//! The newline-delimited JSON request/response protocol.
//!
//! # Requests
//!
//! One JSON object per line. A *solve* request carries a tree (or a whole
//! suite) inline as `cdat-format` text, plus one query:
//!
//! ```text
//! {"id":1,"tree":"or root damage=5\n  bas x cost=1\n","query":"dgc","arg":3}
//! {"id":"s1","suite":"--- a\nor g\n  bas x cost=1\n--- b\n...","query":"cdpf"}
//! {"id":2,"tree":"...","query":"cdpf","solver":"bilp"}
//! {"op":"stats","id":9}
//! {"op":"metrics","id":10}
//! ```
//!
//! * `id` — any JSON value, echoed in every response line for the request
//!   (defaults to `null`). Clients pipeline by id: responses may arrive in
//!   any order. Ids round-trip as parsed JSON values; numbers are IEEE
//!   f64, so integer ids above 2^53 lose precision — use *string* ids for
//!   opaque keys of that size.
//! * `tree` *or* `suite` — the document source. A suite fans out into one
//!   response line per document, each carrying `doc` (and `name` when the
//!   separator names the document).
//! * `query` — `cdpf` (default), `cedpf`, `dgc`, `cgd`, `edgc`, `cged`,
//!   `min-time` or `max-prob`; the four thresholded queries require a
//!   finite `arg`, the others reject one.
//! * `solver` — `auto` (default), `bottomup`, `bdd`, `enumerative` or
//!   `bilp`; per-request solver choice, validated against the tree's shape
//!   and the query's family by the engine (`SolverBackend::select`). Hints
//!   never change the answer — every backend returns the same exact front —
//!   so hinted and unhinted requests share cache entries.
//! * `witnesses` — `true` to include witness attacks in the response
//!   (default `false`): each front point (and each single optimum) then
//!   carries the BAS ids of an attack achieving it, numbered in the
//!   requesting document's own BAS order even when the answer comes from a
//!   cached front of a renamed/reordered copy.
//! * `{"op":"stats"}` — answers immediately (out of band, not batched)
//!   with the aggregate and per-shard cache statistics, server uptime,
//!   total served compute, latency histograms and per-family counters.
//! * `{"op":"metrics"}` — answers immediately with the same telemetry as
//!   Prometheus text exposition, JSON-escaped into a single `metrics`
//!   string field.
//! * `{"op":"whatif","tree":...,"patch":{...}}` — answers the query on
//!   the *patched* tree incrementally: only the dirty root paths are
//!   recomputed, every clean subtree front is reused from the memo the
//!   base tree's normal solve populated. Response bytes are identical to
//!   solving the patched tree from scratch.
//! * `{"op":"sweep","tree":...,"patches":[{...},...]}` — a what-if per
//!   patch, answered as one response line per patch **in patch order**,
//!   each carrying `"variant":k` (the patch's index). All patches share
//!   one subtree memo, so a long sweep pays the base solve once.
//!
//! A *patch* object maps edit classes to name-keyed edits against the
//! request's own tree:
//!
//! ```text
//! {"cost":{"bas-name":2},"prob":{"bas-name":0.5},"damage":{"node":100},
//!  "gate":{"node":"and"},"defend":["bas-name"]}
//! ```
//!
//! `cost`/`prob`/`defend` name BASs, `damage` any node, `gate` a gate
//! (with the new type `"and"` or `"or"`). The `whatif`/`sweep` ops take
//! the same `query`/`arg`/`witnesses` fields as solves but only the six
//! cost-damage queries (`min-time`/`max-prob` have no incremental path)
//! and only a single `tree` (no `suite`, no `solver`).
//!
//! # Responses
//!
//! One JSON object per line: the echoed `id` (plus `doc`/`name` for suite
//! documents), the query, and one of `front` (a point array, plus a
//! parallel `witnesses` array of BAS-id arrays when requested), `point` (a
//! single optimum or `null`, plus `witness` when requested), `value` (a
//! scalar optimum or `null`, plus `witness` when requested — `min-time` /
//! `max-prob`), or `error`.
//! Responses carry exactly the same front bytes as `cdat batch` on the
//! same document — the rendering code is shared — so serving output is
//! directly diffable against batch output, witnesses included.

use std::sync::Arc;

use cdat_core::{CdpAttackTree, NodeType, TreePatch};
use cdat_engine::{CacheStats, FrontKind, Query, Response, SolverHint};
use cdat_format::json::{self, Value};
use cdat_obs::{histogram_samples, type_line, HistogramSnapshot};

use crate::router::ServerSnapshot;

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// A solve request: one query against one tree or a whole suite.
    Solve(SolveRequest),
    /// A `whatif`/`sweep` op: incremental solves of patched variants.
    Delta(DeltaSolveRequest),
    /// The `stats` control operation.
    Stats {
        /// The echoed request id.
        id: Value,
    },
    /// The `metrics` control operation (Prometheus text exposition).
    Metrics {
        /// The echoed request id.
        id: Value,
    },
}

/// A parsed `whatif` or `sweep` request: one base tree, one query, and
/// the patches whose variants to answer (exactly one for `whatif`).
#[derive(Debug)]
pub struct DeltaSolveRequest {
    /// The echoed request id.
    pub id: Value,
    /// The parsed base tree.
    pub tree: Arc<CdpAttackTree>,
    /// The query to answer on every patched variant.
    pub query: Query,
    /// Whether responses should carry witness attacks.
    pub witnesses: bool,
    /// The patches, already resolved to base-tree ids.
    pub patches: Vec<TreePatch>,
    /// Whether the op was `sweep` (responses then carry `variant`).
    pub sweep: bool,
}

/// A parsed solve request.
#[derive(Debug)]
pub struct SolveRequest {
    /// The echoed request id.
    pub id: Value,
    /// The parsed documents: one for `tree` requests, all suite documents
    /// for `suite` requests.
    pub docs: Vec<RequestDoc>,
    /// Whether the request was a suite (responses then carry `doc`/`name`).
    pub suite: bool,
    /// The query to run against every document.
    pub query: Query,
    /// The solver hint (`auto` unless the request says otherwise).
    pub hint: SolverHint,
    /// Whether responses should carry witness attacks.
    pub witnesses: bool,
}

/// One document of a solve request.
#[derive(Debug)]
pub struct RequestDoc {
    /// Position within the request's suite (0 for `tree` requests).
    pub doc: usize,
    /// The `--- name` of the document, if any.
    pub name: Option<String>,
    /// The parsed tree.
    pub tree: Arc<CdpAttackTree>,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the id to echo (best effort: `null` when the line is not even
/// an object) and a message; the server answers with [`error_line`].
pub fn parse_request(line: &str) -> Result<Request, (Value, String)> {
    let value = json::parse(line).map_err(|e| (Value::Null, format!("bad JSON: {e}")))?;
    let Value::Obj(ref pairs) = value else {
        return Err((Value::Null, "request must be a JSON object".into()));
    };
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let fail = |message: String| (id.clone(), message);

    if let Some(op) = value.get("op") {
        return match op.as_str() {
            Some("stats") => Ok(Request::Stats { id }),
            Some("metrics") => Ok(Request::Metrics { id }),
            Some("whatif") => parse_delta(&value, pairs, id, false),
            Some("sweep") => parse_delta(&value, pairs, id, true),
            Some(other) => Err(fail(format!(
                "unknown op {other:?} (expected \"stats\", \"metrics\", \"whatif\" or \"sweep\")"
            ))),
            None => Err(fail("op must be a string".into())),
        };
    }

    for (key, _) in pairs {
        if !matches!(
            key.as_str(),
            "id" | "tree" | "suite" | "query" | "arg" | "solver" | "witnesses"
        ) {
            return Err(fail(format!("unknown request field {key:?}")));
        }
    }

    let query_name = match value.get("query") {
        None => "cdpf",
        Some(Value::Str(s)) => s.as_str(),
        Some(_) => return Err(fail("query must be a string".into())),
    };
    let arg = match value.get("arg") {
        None => None,
        Some(Value::Num(v)) => Some(*v),
        Some(_) => return Err(fail("arg must be a number".into())),
    };
    let query = parse_query(query_name, arg).map_err(&fail)?;

    let hint = match value.get("solver") {
        None => SolverHint::Auto,
        Some(Value::Str(s)) => SolverHint::parse(s).map_err(&fail)?,
        Some(_) => return Err(fail("solver must be a string".into())),
    };

    let witnesses = match value.get("witnesses") {
        None => false,
        Some(Value::Bool(w)) => *w,
        Some(_) => return Err(fail("witnesses must be a boolean".into())),
    };

    let (docs, suite) = match (value.get("tree"), value.get("suite")) {
        (Some(Value::Str(text)), None) => {
            let tree = cdat_format::parse(text).map_err(|e| fail(format!("tree: {e}")))?;
            (vec![RequestDoc { doc: 0, name: None, tree: Arc::new(tree) }], false)
        }
        (None, Some(Value::Str(text))) => {
            let documents =
                cdat_format::parse_multi(text).map_err(|e| fail(format!("suite: {e}")))?;
            let docs = documents
                .into_iter()
                .enumerate()
                .map(|(doc, d)| RequestDoc { doc, name: d.name, tree: Arc::new(d.tree) })
                .collect();
            (docs, true)
        }
        (Some(_), None) => return Err(fail("tree must be a string".into())),
        (None, Some(_)) => return Err(fail("suite must be a string".into())),
        (Some(_), Some(_)) => return Err(fail("give either tree or suite, not both".into())),
        (None, None) => return Err(fail("missing tree or suite".into())),
    };
    Ok(Request::Solve(SolveRequest { id, docs, suite, query, hint, witnesses }))
}

/// Parses the body of a `whatif`/`sweep` op (see the module docs for the
/// wire shape): the base tree, the shared query/witness fields, and one
/// patch (`whatif`) or a patch array (`sweep`), each resolved to base-tree
/// ids by node name.
fn parse_delta(
    value: &Value,
    pairs: &[(String, Value)],
    id: Value,
    sweep: bool,
) -> Result<Request, (Value, String)> {
    let fail = |message: String| (id.clone(), message);
    let patch_field = if sweep { "patches" } else { "patch" };
    for (key, _) in pairs {
        let known = matches!(key.as_str(), "op" | "id" | "tree" | "query" | "arg" | "witnesses")
            || key == patch_field;
        if !known {
            return Err(fail(format!("unknown request field {key:?}")));
        }
    }

    let query_name = match value.get("query") {
        None => "cdpf",
        Some(Value::Str(s)) => s.as_str(),
        Some(_) => return Err(fail("query must be a string".into())),
    };
    let arg = match value.get("arg") {
        None => None,
        Some(Value::Num(v)) => Some(*v),
        Some(_) => return Err(fail("arg must be a number".into())),
    };
    let query = parse_query(query_name, arg).map_err(&fail)?;

    let witnesses = match value.get("witnesses") {
        None => false,
        Some(Value::Bool(w)) => *w,
        Some(_) => return Err(fail("witnesses must be a boolean".into())),
    };

    let tree = match value.get("tree") {
        Some(Value::Str(text)) => {
            Arc::new(cdat_format::parse(text).map_err(|e| fail(format!("tree: {e}")))?)
        }
        Some(_) => return Err(fail("tree must be a string".into())),
        None => return Err(fail("missing tree".into())),
    };

    let patches = if sweep {
        match value.get("patches") {
            Some(Value::Arr(specs)) => {
                if specs.is_empty() {
                    return Err(fail("patches must not be empty".into()));
                }
                specs
                    .iter()
                    .map(|spec| parse_patch(spec, &tree))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&fail)?
            }
            Some(_) => return Err(fail("patches must be an array of patch objects".into())),
            None => return Err(fail("missing patches".into())),
        }
    } else {
        match value.get("patch") {
            Some(spec) => vec![parse_patch(spec, &tree).map_err(&fail)?],
            None => return Err(fail("missing patch".into())),
        }
    };
    Ok(Request::Delta(DeltaSolveRequest { id, tree, query, witnesses, patches, sweep }))
}

/// Resolves one wire patch object against `tree` by node name (see the
/// module docs for the shape). Name resolution and shape errors are
/// reported here; *value* validation (finite costs, probabilities in
/// range, gates actually being gates) stays with [`TreePatch::validate`]
/// in the engine, so the CLI and the server reject identically.
pub fn parse_patch(spec: &Value, tree: &CdpAttackTree) -> Result<TreePatch, String> {
    let Value::Obj(pairs) = spec else {
        return Err("patch must be a JSON object".into());
    };
    let structure = tree.tree();
    let node = |name: &str| {
        structure.find(name).ok_or_else(|| format!("patch names unknown node {name:?}"))
    };
    let bas = |name: &str| {
        node(name).and_then(|v| {
            structure.bas_of_node(v).ok_or_else(|| format!("{name:?} is not a basic attack step"))
        })
    };
    let mut patch = TreePatch::default();
    for (key, value) in pairs {
        match key.as_str() {
            "cost" | "prob" | "damage" => {
                let Value::Obj(edits) = value else {
                    return Err(format!("{key} must map names to numbers"));
                };
                for (name, new) in edits {
                    let Value::Num(new) = new else {
                        return Err(format!("{key} must map names to numbers"));
                    };
                    match key.as_str() {
                        "cost" => patch.costs.push((bas(name)?, *new)),
                        "prob" => patch.probs.push((bas(name)?, *new)),
                        _ => patch.damages.push((node(name)?, *new)),
                    }
                }
            }
            "gate" => {
                let Value::Obj(swaps) = value else {
                    return Err("gate must map gate names to \"and\" or \"or\"".into());
                };
                for (name, new) in swaps {
                    let new = match new.as_str() {
                        Some("and") => NodeType::And,
                        Some("or") => NodeType::Or,
                        _ => return Err("gate must map gate names to \"and\" or \"or\"".into()),
                    };
                    patch.gates.push((node(name)?, new));
                }
            }
            "defend" => {
                let Value::Arr(names) = value else {
                    return Err("defend must be an array of BAS names".into());
                };
                for name in names {
                    let Value::Str(name) = name else {
                        return Err("defend must be an array of BAS names".into());
                    };
                    patch.defends.push(bas(name)?);
                }
            }
            other => return Err(format!("unknown patch field {other:?}")),
        }
    }
    Ok(patch)
}

/// Parses a query name plus optional argument into an engine [`Query`].
///
/// # Errors
///
/// Unknown names, missing or non-finite arguments for the thresholded
/// queries, and stray arguments on the front queries.
pub fn parse_query(name: &str, arg: Option<f64>) -> Result<Query, String> {
    let need = |what: &str| {
        arg.ok_or_else(|| format!("query {name:?} needs a finite {what} arg")).and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("query {name:?} needs a finite {what} arg"))
            }
        })
    };
    match name {
        "cdpf" | "cedpf" | "min-time" | "max-prob" => {
            if arg.is_some() {
                return Err(format!("query {name:?} takes no arg"));
            }
            Ok(match name {
                "cdpf" => Query::Cdpf,
                "cedpf" => Query::Cedpf,
                "min-time" => Query::MinTime,
                _ => Query::MaxProb,
            })
        }
        "dgc" => Ok(Query::Dgc(need("budget")?)),
        "cgd" => Ok(Query::Cgd(need("threshold")?)),
        "edgc" => Ok(Query::Edgc(need("budget")?)),
        "cged" => Ok(Query::Cged(need("threshold")?)),
        other => Err(format!(
            "unknown query {other:?} (expected cdpf, cedpf, dgc, cgd, edgc, cged, min-time or \
             max-prob)"
        )),
    }
}

/// The protocol name and argument of a query, e.g. `("dgc", Some(10.0))`.
pub fn query_name(query: Query) -> (&'static str, Option<f64>) {
    match query {
        Query::Cdpf => ("cdpf", None),
        Query::Cedpf => ("cedpf", None),
        Query::Dgc(b) => ("dgc", Some(b)),
        Query::Cgd(t) => ("cgd", Some(t)),
        Query::Edgc(b) => ("edgc", Some(b)),
        Query::Cged(t) => ("cged", Some(t)),
        Query::MinTime => ("min-time", None),
        Query::MaxProb => ("max-prob", None),
    }
}

/// Renders the `"query":...[,"arg":...]` fragment (no leading comma).
pub fn query_fragment(query: Query) -> String {
    let (name, arg) = query_name(query);
    match arg {
        Some(arg) => format!("\"query\":\"{name}\",\"arg\":{}", json::num(arg)),
        None => format!("\"query\":\"{name}\""),
    }
}

/// Renders a response body fragment — `,"front":...`, `,"point":...` or
/// `,"error":...` — exactly as `cdat batch` prints it (shared bytes are
/// what makes serve output diffable against batch output).
///
/// When the response carries witnesses (the request opted in), fronts gain
/// a `witnesses` array parallel to `front` — one ascending BAS-id array
/// per point — and single optima gain a `witness` array. Responses without
/// witnesses render byte-identically to the pre-witness protocol.
pub fn body_fragment(response: &Response) -> String {
    use std::fmt::Write as _;
    let write_witness = |s: &mut String, witness: &cdat_core::Attack| {
        s.push('[');
        for (i, b) in witness.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", b.index());
        }
        s.push(']');
    };
    let mut s = String::new();
    match response {
        Response::Front(front) => {
            s.push_str(",\"front\":[");
            for (i, p) in front.points().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{},{}]", json::num(p.cost), json::num(p.damage));
            }
            s.push(']');
            if front.entries().iter().any(|e| e.witness.is_some()) {
                s.push_str(",\"witnesses\":[");
                for (i, e) in front.entries().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    match &e.witness {
                        Some(w) => write_witness(&mut s, w),
                        None => s.push_str("null"),
                    }
                }
                s.push(']');
            }
        }
        Response::Entry(Some(e)) => {
            let p = e.point;
            let _ = write!(s, ",\"point\":[{},{}]", json::num(p.cost), json::num(p.damage));
            if let Some(w) = &e.witness {
                s.push_str(",\"witness\":");
                write_witness(&mut s, w);
            }
        }
        Response::Entry(None) => s.push_str(",\"point\":null"),
        Response::Value(Some(e)) => {
            // Scalar optima store the value in the entry's cost slot.
            let _ = write!(s, ",\"value\":{}", json::num(e.point.cost));
            if let Some(w) = &e.witness {
                s.push_str(",\"witness\":");
                write_witness(&mut s, w);
            }
        }
        Response::Value(None) => s.push_str(",\"value\":null"),
        Response::Error(message) => {
            let _ = write!(s, ",\"error\":\"{}\"", json::escape(message));
        }
    }
    s
}

/// Renders the opening of a response line, up to (and excluding) the body
/// fragment: `{"id":...[,"doc":N[,"name":"..."]],"query":...`.
pub fn response_prefix(id: &Value, doc: Option<(usize, Option<&str>)>, query: Query) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"id\":{id}");
    if let Some((doc, name)) = doc {
        let _ = write!(s, ",\"doc\":{doc}");
        if let Some(name) = name {
            let _ = write!(s, ",\"name\":\"{}\"", json::escape(name));
        }
    }
    let _ = write!(s, ",{}", query_fragment(query));
    s
}

/// Renders the opening of a `whatif`/`sweep` response line:
/// `{"id":...[,"variant":K],"query":...`. `variant` (the patch's index in
/// the request's `patches` array) appears for sweep responses only, so a
/// single `whatif` answer carries exactly the bytes a scratch solve of
/// the patched tree would.
pub fn delta_response_prefix(id: &Value, variant: Option<usize>, query: Query) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"id\":{id}");
    if let Some(variant) = variant {
        let _ = write!(s, ",\"variant\":{variant}");
    }
    let _ = write!(s, ",{}", query_fragment(query));
    s
}

/// Renders a complete error response line.
pub fn error_line(id: &Value, message: &str) -> String {
    format!("{{\"id\":{id},\"error\":\"{}\"}}", json::escape(message))
}

/// Renders one latency/size histogram as a JSON object: the observation
/// count, the sum, and the p50/p90/p99 quantiles (inclusive log2-bucket
/// upper bounds; see `cdat_obs`).
fn histogram_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        snap.count,
        snap.sum,
        snap.p50(),
        snap.p90(),
        snap.p99()
    )
}

/// Renders a complete stats response line: the aggregate over all shards,
/// the server's latency histograms and per-family counters, plus the
/// per-shard cache breakdown.
///
/// Aggregation per field: `hits`, `misses`, `entries`, `points`,
/// `evictions` and `disk_hits` **sum** over the shards (disjoint caches);
/// `disk_entries` takes the **max** (every shard handle indexes the same
/// store file, so their counts overlap rather than add); histograms
/// **merge** (bucket-wise sums, so quantiles reflect all shards).
pub fn stats_line(id: &Value, shards: &[CacheStats], snapshot: &ServerSnapshot) -> String {
    use std::fmt::Write as _;
    let one = |s: &CacheStats| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{},\"points\":{},\"evictions\":{},\
             \"disk_hits\":{},\"disk_entries\":{}}}",
            s.hits, s.misses, s.entries, s.points, s.evictions, s.disk_hits, s.disk_entries
        )
    };
    let total = shards.iter().fold(CacheStats::default(), |mut acc, s| {
        acc.hits += s.hits;
        acc.misses += s.misses;
        acc.entries += s.entries;
        acc.points += s.points;
        acc.evictions += s.evictions;
        acc.disk_hits += s.disk_hits;
        // Every shard handle indexes the same store file, so the shard
        // counts overlap; the largest index is the closest aggregate.
        acc.disk_entries = acc.disk_entries.max(s.disk_entries);
        acc
    });
    // The aggregate object keeps the seven cache scalars first (clients
    // and the smoke suite match on that prefix), then the server-level
    // scalars.
    let mut aggregate = one(&total);
    aggregate.pop(); // reopen the object for the extra fields
    let _ = write!(
        aggregate,
        ",\"uptime_us\":{},\"compute_us\":{}}}",
        snapshot.uptime_us, snapshot.engine.served_compute_us
    );
    let mut line = format!("{{\"id\":{id},\"stats\":{aggregate}");
    let _ = write!(
        line,
        ",\"histograms\":{{\"queue_wait_us\":{},\"solve_us\":{},\"e2e_us\":{},\"batch_fill\":{},\
         \"dispatch_us\":{},\"dirty_path_len\":{}}}",
        histogram_json(&snapshot.engine.queue_wait),
        histogram_json(&snapshot.engine.solve),
        histogram_json(&snapshot.e2e),
        histogram_json(&snapshot.batch_fill),
        histogram_json(&snapshot.dispatch),
        histogram_json(&snapshot.engine.dirty_path_len),
    );
    line.push_str(",\"families\":{");
    for (i, kind) in FrontKind::ALL.into_iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let fam = snapshot.engine.families[kind.index()];
        let _ = write!(
            line,
            "\"{}\":{{\"requests\":{},\"hits\":{},\"disk_hits\":{},\"misses\":{},\
             \"delta_requests\":{},\"subtree_hits\":{},\"dirty_nodes\":{}}}",
            kind.label(),
            fam.requests,
            fam.hits,
            fam.disk_hits,
            fam.misses,
            fam.delta_requests,
            fam.subtree_hits,
            fam.dirty_nodes
        );
    }
    line.push_str("},\"shards\":[");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{}", one(s));
    }
    line.push_str("]}");
    line
}

/// Renders the server's telemetry as Prometheus text exposition (the
/// payload of the `metrics` op and of `cdat serve --metrics`). Uptime is
/// deliberately absent: the exposition is reproducible for a fresh,
/// unqueried server, which the docs-example replay relies on.
pub fn metrics_text(snapshot: &ServerSnapshot) -> String {
    let mut out = String::new();
    snapshot.engine.render_prometheus(&mut out);
    type_line(&mut out, "cdat_batch_fill", "histogram");
    histogram_samples(&mut out, "cdat_batch_fill", &[], &snapshot.batch_fill);
    type_line(&mut out, "cdat_dispatch_us", "histogram");
    histogram_samples(&mut out, "cdat_dispatch_us", &[], &snapshot.dispatch);
    type_line(&mut out, "cdat_shard_e2e_us", "histogram");
    for (shard, snap) in snapshot.per_shard_e2e.iter().enumerate() {
        let label = shard.to_string();
        histogram_samples(&mut out, "cdat_shard_e2e_us", &[("shard", &label)], snap);
    }
    if let Some(store) = &snapshot.store {
        store.render_prometheus(&mut out);
    }
    out
}

/// Renders a complete metrics response line: the Prometheus exposition
/// JSON-escaped into one string field.
pub fn metrics_line(id: &Value, router: &crate::router::Router) -> String {
    format!("{{\"id\":{id},\"metrics\":\"{}\"}}", json::escape(&metrics_text(&router.snapshot())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_tree_request() {
        let line = r#"{"id":7,"tree":"or root damage=5\n  bas x cost=1\n","query":"dgc","arg":3}"#;
        let Request::Solve(req) = parse_request(line).unwrap() else { panic!("not a solve") };
        assert_eq!(req.id, Value::Num(7.0));
        assert_eq!(req.docs.len(), 1);
        assert!(!req.suite);
        assert_eq!(req.query, Query::Dgc(3.0));
        assert_eq!(req.hint, SolverHint::Auto);
        assert_eq!(req.docs[0].tree.tree().bas_count(), 1);
    }

    #[test]
    fn parses_a_suite_request_with_solver_hint() {
        let line = concat!(
            r#"{"id":"s","suite":"--- a\nor g damage=1\n  bas x cost=2\n"#,
            r#"--- b\nor h damage=3\n  bas y cost=4\n","solver":"bilp"}"#
        );
        let Request::Solve(req) = parse_request(line).unwrap() else { panic!("not a solve") };
        assert!(req.suite);
        assert_eq!(req.query, Query::Cdpf, "query defaults to cdpf");
        assert_eq!(req.hint, SolverHint::Bilp);
        assert_eq!(req.docs.len(), 2);
        assert_eq!(req.docs[1].name.as_deref(), Some("b"));
        assert_eq!(req.docs[1].doc, 1);
    }

    #[test]
    fn parses_every_solver_hint_spelling() {
        for (spelling, hint) in [
            ("auto", SolverHint::Auto),
            ("bottomup", SolverHint::BottomUp),
            ("bottom-up", SolverHint::BottomUp),
            ("bu", SolverHint::BottomUp),
            ("bdd", SolverHint::Bdd),
            ("enumerative", SolverHint::Enumerative),
            ("enum", SolverHint::Enumerative),
            ("bilp", SolverHint::Bilp),
        ] {
            let line = format!(r#"{{"id":1,"tree":"or a\n  bas x\n","solver":"{spelling}"}}"#);
            let Request::Solve(req) = parse_request(&line).unwrap() else { panic!("not a solve") };
            assert_eq!(req.hint, hint, "spelling {spelling:?}");
        }
    }

    #[test]
    fn parses_the_stats_op() {
        assert!(matches!(
            parse_request(r#"{"op":"stats","id":1}"#).unwrap(),
            Request::Stats { id: Value::Num(_) }
        ));
    }

    #[test]
    fn parses_the_metrics_op() {
        assert!(matches!(
            parse_request(r#"{"op":"metrics","id":1}"#).unwrap(),
            Request::Metrics { id: Value::Num(_) }
        ));
    }

    #[test]
    fn parses_whatif_and_sweep_ops_with_name_resolved_patches() {
        let tree = r#""tree":"or root damage=5\n  bas x cost=1\n  bas y cost=2\n""#;
        let line = format!(
            "{{\"op\":\"whatif\",\"id\":4,{tree},\"query\":\"dgc\",\"arg\":3,\
             \"patch\":{{\"cost\":{{\"x\":7}},\"damage\":{{\"root\":9}},\"defend\":[\"y\"]}}}}"
        );
        let Request::Delta(req) = parse_request(&line).unwrap() else { panic!("not a delta") };
        assert!(!req.sweep);
        assert_eq!(req.query, Query::Dgc(3.0));
        assert_eq!(req.patches.len(), 1);
        let patch = &req.patches[0];
        assert_eq!(patch.costs, vec![(cdat_core::BasId::new(0), 7.0)]);
        // The format numbers leaves before their gate: `root` is node 2.
        assert_eq!(patch.damages, vec![(cdat_core::NodeId::new(2), 9.0)]);
        assert_eq!(patch.defends, vec![cdat_core::BasId::new(1)]);

        let line = format!(
            "{{\"op\":\"sweep\",\"id\":5,{tree},\"witnesses\":true,\
             \"patches\":[{{\"cost\":{{\"x\":1}}}},{{\"gate\":{{\"root\":\"and\"}}}},{{}}]}}"
        );
        let Request::Delta(req) = parse_request(&line).unwrap() else { panic!("not a delta") };
        assert!(req.sweep && req.witnesses);
        assert_eq!(req.query, Query::Cdpf, "query defaults to cdpf");
        assert_eq!(req.patches.len(), 3);
        assert_eq!(req.patches[1].gates, vec![(cdat_core::NodeId::new(2), NodeType::And)]);
        assert!(req.patches[2].is_empty(), "an empty patch object is the unpatched base");
    }

    #[test]
    fn rejects_malformed_delta_requests() {
        let tree = r#""tree":"or root damage=5\n  bas x cost=1\n""#;
        for (line, needle) in [
            (format!("{{\"op\":\"whatif\",\"id\":3,{tree}}}"), "missing patch"),
            (format!("{{\"op\":\"sweep\",\"id\":3,{tree}}}"), "missing patches"),
            (format!("{{\"op\":\"sweep\",\"id\":3,{tree},\"patches\":[]}}"), "must not be empty"),
            (
                format!("{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":7}}"),
                "patch must be a JSON object",
            ),
            (
                format!("{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{\"frob\":1}}}}"),
                "unknown patch field",
            ),
            (
                format!("{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{\"cost\":{{\"z\":1}}}}}}"),
                "unknown node \"z\"",
            ),
            (
                format!(
                    "{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{\"cost\":{{\"root\":1}}}}}}"
                ),
                "not a basic attack step",
            ),
            (
                format!(
                    "{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{\"gate\":{{\"root\":\"x\"}}}}}}"
                ),
                "gate must map gate names",
            ),
            (
                format!("{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{}},\"solver\":\"bilp\"}}"),
                "unknown request field",
            ),
            (
                format!("{{\"op\":\"whatif\",\"id\":3,{tree},\"patch\":{{}},\"patches\":[]}}"),
                "unknown request field",
            ),
            ("{\"op\":\"whatif\",\"id\":3,\"patch\":{}}".to_string(), "missing tree"),
        ] {
            let (id, message) = parse_request(&line).unwrap_err();
            assert!(message.contains(needle), "{line}: {message}");
            assert_eq!(id, Value::Num(3.0), "{line}");
        }
    }

    #[test]
    fn delta_prefixes_render_variants_for_sweeps_only() {
        assert_eq!(
            delta_response_prefix(&Value::Num(4.0), None, Query::Cdpf),
            "{\"id\":4,\"query\":\"cdpf\""
        );
        assert_eq!(
            delta_response_prefix(&Value::Num(4.0), Some(17), Query::Dgc(3.0)),
            "{\"id\":4,\"variant\":17,\"query\":\"dgc\",\"arg\":3"
        );
    }

    #[test]
    fn rejects_malformed_requests_with_the_echoed_id() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":3}"#, "missing tree or suite"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","suite":"x"}"#, "not both"),
            (r#"{"id":3,"tree":42}"#, "tree must be a string"),
            (r#"{"id":3,"tree":"zap\n"}"#, "tree: line 1"),
            (r#"{"id":3,"suite":"--- a\nzap\n"}"#, "suite: line 2"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","query":"frob"}"#, "unknown query"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","query":"dgc"}"#, "needs a finite budget"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","query":"cdpf","arg":1}"#, "takes no arg"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","solver":"magic"}"#, "unknown solver"),
            (r#"{"id":3,"tree":"or a\n  bas x\n","frob":1}"#, "unknown request field"),
            (r#"{"op":"frob"}"#, "unknown op"),
        ] {
            let (id, message) = parse_request(line).unwrap_err();
            assert!(message.contains(needle), "{line}: {message}");
            if line.contains("\"id\":3") {
                assert_eq!(id, Value::Num(3.0), "{line}");
            }
        }
    }

    #[test]
    fn fragments_render_like_the_batch_cli() {
        use cdat_pareto::{CostDamage, FrontEntry, ParetoFront};
        let front =
            ParetoFront::from_points([CostDamage::new(0.0, 0.0), CostDamage::new(1.0, 200.0)]);
        assert_eq!(body_fragment(&Response::Front(front)), ",\"front\":[[0,0],[1,200]]");
        assert_eq!(
            body_fragment(&Response::Entry(Some(FrontEntry::point(3.0, 210.5)))),
            ",\"point\":[3,210.5]"
        );
        assert_eq!(body_fragment(&Response::Entry(None)), ",\"point\":null");
        assert_eq!(
            body_fragment(&Response::Error("bad \"thing\"".into())),
            ",\"error\":\"bad \\\"thing\\\"\""
        );
        assert_eq!(query_fragment(Query::Dgc(10.0)), "\"query\":\"dgc\",\"arg\":10");
        assert_eq!(
            response_prefix(&Value::Num(4.0), Some((1, Some("t1"))), Query::Cdpf),
            "{\"id\":4,\"doc\":1,\"name\":\"t1\",\"query\":\"cdpf\""
        );
    }

    #[test]
    fn scalar_queries_parse_and_render() {
        use cdat_core::{Attack, BasId};
        use cdat_pareto::FrontEntry;
        assert_eq!(parse_query("min-time", None).unwrap(), Query::MinTime);
        assert_eq!(parse_query("max-prob", None).unwrap(), Query::MaxProb);
        assert!(parse_query("min-time", Some(3.0)).unwrap_err().contains("takes no arg"));
        assert_eq!(query_fragment(Query::MinTime), "\"query\":\"min-time\"");
        assert_eq!(query_fragment(Query::MaxProb), "\"query\":\"max-prob\"");
        assert_eq!(
            body_fragment(&Response::Value(Some(FrontEntry::point(0.36, 0.0)))),
            ",\"value\":0.36"
        );
        assert_eq!(body_fragment(&Response::Value(None)), ",\"value\":null");
        let e = FrontEntry::with_witness(1.0, 0.0, Attack::from_bas_ids(3, [BasId::new(0)]));
        assert_eq!(body_fragment(&Response::Value(Some(e))), ",\"value\":1,\"witness\":[0]");
    }

    #[test]
    fn witnessed_fragments_render_bas_id_arrays() {
        use cdat_core::{Attack, BasId};
        use cdat_pareto::{FrontEntry, ParetoFront};
        let b = |i: usize| BasId::new(i);
        let front = ParetoFront::from_entries([
            FrontEntry::with_witness(0.0, 0.0, Attack::empty(3)),
            FrontEntry::with_witness(1.0, 200.0, Attack::from_bas_ids(3, [b(0), b(2)])),
        ]);
        assert_eq!(
            body_fragment(&Response::Front(front)),
            ",\"front\":[[0,0],[1,200]],\"witnesses\":[[],[0,2]]"
        );
        let entry = FrontEntry::with_witness(3.0, 210.0, Attack::from_bas_ids(3, [b(1)]));
        assert_eq!(
            body_fragment(&Response::Entry(Some(entry))),
            ",\"point\":[3,210],\"witness\":[1]"
        );
    }

    #[test]
    fn witnesses_field_parses_and_validates() {
        let base = r#""tree":"or root damage=5\n  bas x cost=1\n""#;
        let on = format!("{{{base},\"witnesses\":true}}");
        let Request::Solve(req) = parse_request(&on).unwrap() else { panic!("not a solve") };
        assert!(req.witnesses);
        let off = format!("{{{base},\"witnesses\":false}}");
        let Request::Solve(req) = parse_request(&off).unwrap() else { panic!("not a solve") };
        assert!(!req.witnesses);
        let default = format!("{{{base}}}");
        let Request::Solve(req) = parse_request(&default).unwrap() else { panic!("not a solve") };
        assert!(!req.witnesses, "witnesses default off");
        let bad = format!("{{{base},\"witnesses\":1}}");
        let (_, message) = parse_request(&bad).unwrap_err();
        assert!(message.contains("witnesses must be a boolean"), "{message}");
    }

    /// A snapshot with recognizable values for the line-rendering tests.
    fn snapshot() -> ServerSnapshot {
        use cdat_engine::EngineSnapshot;
        let queue_wait = cdat_obs::Histogram::new();
        for v in 1..=100 {
            queue_wait.observe(v);
        }
        let mut engine = EngineSnapshot::new();
        engine.queue_wait = queue_wait.snapshot();
        engine.served_compute_us = 777;
        engine.families[FrontKind::Deterministic.index()].requests = 4;
        engine.families[FrontKind::Deterministic.index()].hits = 3;
        engine.families[FrontKind::Deterministic.index()].misses = 1;
        engine.families[FrontKind::Deterministic.index()].delta_requests = 6;
        engine.families[FrontKind::Deterministic.index()].subtree_hits = 12;
        engine.families[FrontKind::Deterministic.index()].dirty_nodes = 9;
        let dirty = cdat_obs::Histogram::new();
        for len in [0, 1, 1, 2, 2, 3] {
            dirty.observe(len);
        }
        engine.dirty_path_len = dirty.snapshot();
        ServerSnapshot {
            uptime_us: 55,
            engine,
            e2e: HistogramSnapshot::default(),
            per_shard_e2e: vec![HistogramSnapshot::default(), HistogramSnapshot::default()],
            batch_fill: HistogramSnapshot::default(),
            dispatch: HistogramSnapshot::default(),
            store: None,
        }
    }

    #[test]
    fn stats_line_aggregates_shards() {
        let shards = [
            CacheStats {
                hits: 2,
                misses: 1,
                entries: 1,
                points: 4,
                evictions: 0,
                disk_hits: 1,
                disk_entries: 9,
            },
            CacheStats {
                hits: 1,
                misses: 3,
                entries: 2,
                points: 6,
                evictions: 5,
                disk_hits: 2,
                disk_entries: 7,
            },
        ];
        let line = stats_line(&Value::Null, &shards, &snapshot());
        assert!(line.starts_with("{\"id\":null,\"stats\":{\"hits\":3,\"misses\":4,"), "{line}");
        assert!(line.contains("\"evictions\":5,"), "{line}");
        // Disk hits sum; disk entries take the max — the handles index one
        // shared file, so their counts overlap rather than add.
        assert!(
            line.contains(
                "\"disk_hits\":3,\"disk_entries\":9,\"uptime_us\":55,\"compute_us\":777}"
            ),
            "{line}"
        );
        // The snapshot's queue-wait histogram (1..=100): count, sum and
        // the inclusive log2-bucket quantile bounds.
        assert!(
            line.contains(
                "\"histograms\":{\"queue_wait_us\":{\"count\":100,\"sum\":5050,\"p50\":63,\
                 \"p90\":127,\"p99\":127}"
            ),
            "{line}"
        );
        assert!(
            line.contains(
                "\"families\":{\"deterministic\":{\"requests\":4,\"hits\":3,\"disk_hits\":0,\
                 \"misses\":1,\"delta_requests\":6,\"subtree_hits\":12,\"dirty_nodes\":9},\
                 \"probabilistic\":{\"requests\":0,"
            ),
            "{line}"
        );
        assert!(
            line.contains(",\"dirty_path_len\":{\"count\":6,\"sum\":9,"),
            "the delta histogram joins the histograms object: {line}"
        );
        assert!(line.contains("\"shards\":[{"), "{line}");
        assert!(line.contains("\"disk_hits\":1,\"disk_entries\":9}"), "{line}");
        assert!(cdat_format::json::parse(&line).is_ok(), "{line}");
    }

    #[test]
    fn metrics_text_is_prometheus_shaped_and_line_escapes_cleanly() {
        let text = metrics_text(&snapshot());
        assert!(text.contains("# TYPE cdat_requests_total counter"), "{text}");
        assert!(text.contains("cdat_requests_total{family=\"deterministic\"} 4"), "{text}");
        assert!(
            text.contains("cdat_cache_hits_total{family=\"deterministic\",tier=\"memory\"} 3"),
            "{text}"
        );
        assert!(text.contains("cdat_queue_wait_us_count 100"), "{text}");
        assert!(text.contains("cdat_queue_wait_us_sum 5050"), "{text}");
        assert!(text.contains("cdat_shard_e2e_us_count{shard=\"1\"} 0"), "{text}");
        assert!(!text.contains("uptime"), "exposition must stay reproducible: {text}");
        // The JSON wrapper escapes the newlines into one parseable line.
        let line = format!("{{\"id\":7,\"metrics\":\"{}\"}}", cdat_format::json::escape(&text));
        assert!(!line.contains('\n'), "{line}");
        assert!(cdat_format::json::parse(&line).is_ok(), "{line}");
    }
}
