//! Reduced ordered binary decision diagrams (ROBDDs) for attack trees.
//!
//! This crate is the substrate behind the *exact probabilistic analysis of
//! DAG-like attack trees* — the problem the paper leaves open. A treelike
//! tree propagates reach probabilities bottom-up because children are
//! independent; in a DAG, shared BASs correlate the children and the naive
//! recursion double-counts. Compiling each node's structure function to a
//! BDD ([`compile_structure`]) restores exactness: the probability of a BDD
//! is computed by Shannon decomposition in time linear in its size
//! ([`Bdd::probability`]), correlation and all.
//!
//! The manager is a classic hash-consed node store with an apply cache. Only
//! monotone connectives are needed for attack trees, but negation is provided
//! for completeness.
//!
//! # Example
//!
//! ```
//! use cdat_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(2);
//! let x = bdd.var(0);
//! let y = bdd.var(1);
//! let f = bdd.or(x, y);
//! // P(x ∨ y) with P(x)=0.5, P(y)=0.5 is 0.75.
//! assert!((bdd.probability(f, &[0.5, 0.5]) - 0.75).abs() < 1e-12);
//! assert_eq!(bdd.satisfying_assignments(f), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod add;
pub mod fuse;

use std::collections::HashMap;

use cdat_core::{AttackTree, NodeType};

/// Reference to a BDD node inside its [`Bdd`] manager.
///
/// References are only meaningful for the manager that produced them.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The constant-false BDD.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The constant-true BDD.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Whether this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Copy, Clone)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

#[derive(Copy, Clone, Eq, PartialEq, Hash)]
enum Op {
    And,
    Or,
}

/// A hash-consed BDD manager over a fixed set of Boolean variables.
///
/// Variables are indexed `0..num_vars` and ordered by index (for attack
/// trees: BAS id order). All operations return canonical nodes, so semantic
/// equality of functions is pointer equality of [`NodeRef`]s.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    apply_cache: HashMap<(Op, u32, u32), u32>,
    num_vars: usize,
}

impl std::fmt::Debug for Bdd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bdd")
            .field("num_vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Bdd {
    /// Creates a manager for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let sentinel = u32::try_from(num_vars).expect("too many variables");
        Bdd {
            // Terminal nodes live at indices 0 (false) and 1 (true); their
            // `var` is the past-the-end sentinel so the min-var recursion
            // never descends into them.
            nodes: vec![Node { var: sentinel, lo: 0, hi: 0 }, Node { var: sentinel, lo: 1, hi: 1 }],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables of the manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of live nodes in the manager (a capacity measure).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The constant BDD for `value`.
    pub fn terminal(&self, value: bool) -> NodeRef {
        if value {
            NodeRef::TRUE
        } else {
            NodeRef::FALSE
        }
    }

    /// The single-variable function `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var(&mut self, i: usize) -> NodeRef {
        assert!(i < self.num_vars, "variable {i} out of range 0..{}", self.num_vars);
        let v = i as u32;
        NodeRef(self.mk(v, 0, 1))
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push(Node { var, lo, hi });
            (self.nodes.len() - 1) as u32
        })
    }

    fn apply(&mut self, op: Op, a: u32, b: u32) -> u32 {
        match (op, a, b) {
            (Op::And, 0, _) | (Op::And, _, 0) => return 0,
            (Op::And, 1, x) | (Op::And, x, 1) => return x,
            (Op::Or, 1, _) | (Op::Or, _, 1) => return 1,
            (Op::Or, 0, x) | (Op::Or, x, 0) => return x,
            _ if a == b => return a,
            _ => {}
        }
        let key = (op, a.min(b), a.max(b));
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let v = na.var.min(nb.var);
        let (a_lo, a_hi) = if na.var == v { (na.lo, na.hi) } else { (a, a) };
        let (b_lo, b_hi) = if nb.var == v { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.apply(op, a_lo, b_lo);
        let hi = self.apply(op, a_hi, b_hi);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction `a ∧ b`.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        NodeRef(self.apply(Op::And, a.0, b.0))
    }

    /// Disjunction `a ∨ b`.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        NodeRef(self.apply(Op::Or, a.0, b.0))
    }

    /// Negation `¬a` (not needed for attack trees, provided for completeness).
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        NodeRef(self.negate(a.0))
    }

    fn negate(&mut self, a: u32) -> u32 {
        match a {
            0 => 1,
            1 => 0,
            _ => {
                let n = self.nodes[a as usize];
                let lo = self.negate(n.lo);
                let hi = self.negate(n.hi);
                self.mk(n.var, lo, hi)
            }
        }
    }

    /// Evaluates `f` under a total truth assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, f: NodeRef, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment must cover all variables");
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
        cur == 1
    }

    /// Probability that `f` is true when variable `i` is independently true
    /// with probability `probs[i]` (Shannon decomposition, linear in the BDD
    /// size).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != num_vars`.
    pub fn probability(&self, f: NodeRef, probs: &[f64]) -> f64 {
        assert_eq!(probs.len(), self.num_vars, "one probability per variable");
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.prob_rec(f.0, probs, &mut memo)
    }

    fn prob_rec(&self, n: u32, probs: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
        match n {
            0 => 0.0,
            1 => 1.0,
            _ => {
                if let Some(&p) = memo.get(&n) {
                    return p;
                }
                let node = self.nodes[n as usize];
                let pv = probs[node.var as usize];
                let p = (1.0 - pv) * self.prob_rec(node.lo, probs, memo)
                    + pv * self.prob_rec(node.hi, probs, memo);
                memo.insert(n, p);
                p
            }
        }
    }

    /// Number of satisfying assignments of `f` over all `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 127` (the count may overflow `u128`).
    pub fn satisfying_assignments(&self, f: NodeRef) -> u128 {
        assert!(self.num_vars <= 127, "model count may overflow u128");
        let mut memo: HashMap<u32, u128> = HashMap::new();
        let scaled = self.count_rec(f.0, &mut memo);
        // count_rec treats the node's own variable as the first free one;
        // scale by the variables above the root.
        scaled << self.nodes[f.0 as usize].var
    }

    fn count_rec(&self, n: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        match n {
            0 => 0,
            1 => 1,
            _ => {
                if let Some(&c) = memo.get(&n) {
                    return c;
                }
                let node = self.nodes[n as usize];
                let lo = self.count_rec(node.lo, memo)
                    << (self.nodes[node.lo as usize].var - node.var - 1);
                let hi = self.count_rec(node.hi, memo)
                    << (self.nodes[node.hi as usize].var - node.var - 1);
                let c = lo + hi;
                memo.insert(n, c);
                c
            }
        }
    }

    /// Shannon-decomposes a non-terminal node into `(variable, lo, hi)`:
    /// `f = if x_variable then hi else lo`. Returns `None` on terminals.
    pub fn decompose(&self, f: NodeRef) -> Option<(usize, NodeRef, NodeRef)> {
        if f.is_terminal() {
            return None;
        }
        let n = self.nodes[f.0 as usize];
        Some((n.var as usize, NodeRef(n.lo), NodeRef(n.hi)))
    }

    /// Number of distinct BDD nodes reachable from `f` (including terminals).
    pub fn size(&self, f: NodeRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if seen.insert(n) && n > 1 {
                let node = self.nodes[n as usize];
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        seen.len()
    }
}

/// Compiles the structure function of **every** node of an attack tree into
/// one shared BDD manager, with BAS id `b` as variable `b`.
///
/// Returns the manager and, per tree node (indexed by `NodeId::index`), the
/// BDD of `S(·, v)`. Shared sub-DAGs share BDD nodes, so the result is
/// typically far smaller than one BDD per node built in isolation.
pub fn compile_structure(tree: &AttackTree) -> (Bdd, Vec<NodeRef>) {
    let mut bdd = Bdd::new(tree.bas_count());
    let mut refs: Vec<NodeRef> = Vec::with_capacity(tree.node_count());
    for v in tree.node_ids() {
        let r = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has BAS id");
                bdd.var(b.index())
            }
            gate @ (NodeType::Or | NodeType::And) => {
                let mut kids = tree.children(v).iter();
                let first = refs[kids.next().expect("gates have children").index()];
                kids.fold(first, |acc, c| {
                    let cr = refs[c.index()];
                    match gate {
                        NodeType::Or => bdd.or(acc, cr),
                        NodeType::And => bdd.and(acc, cr),
                        NodeType::Bas => unreachable!(),
                    }
                })
            }
        };
        refs.push(r);
    }
    (bdd, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::{Attack, AttackTreeBuilder};

    #[test]
    fn canonicity_makes_equal_functions_identical() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let xy = bdd.and(x, y);
        let yx = bdd.and(y, x);
        assert_eq!(xy, yx);
        let idem = bdd.or(xy, xy);
        assert_eq!(idem, xy);
        // (x ∧ y) ∨ x = x  (absorption).
        let absorbed = bdd.or(xy, x);
        assert_eq!(absorbed, x);
    }

    #[test]
    fn negation_is_involutive_and_complements() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.or(x, y);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(nnf, f);
        let both = bdd.and(f, nf);
        assert_eq!(both, NodeRef::FALSE);
        let either = bdd.or(f, nf);
        assert_eq!(either, NodeRef::TRUE);
    }

    #[test]
    fn eval_matches_truth_table() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let f = bdd.or(xy, z); // (x ∧ y) ∨ z
        for m in 0..8u32 {
            let a = [m & 1 == 1, m & 2 == 2, m & 4 == 4];
            let expect = (a[0] && a[1]) || a[2];
            assert_eq!(bdd.eval(f, &a), expect, "assignment {a:?}");
        }
    }

    #[test]
    fn model_count_on_known_functions() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        assert_eq!(bdd.satisfying_assignments(NodeRef::TRUE), 8);
        assert_eq!(bdd.satisfying_assignments(NodeRef::FALSE), 0);
        assert_eq!(bdd.satisfying_assignments(x), 4);
        assert_eq!(bdd.satisfying_assignments(z), 4);
        let xy = bdd.and(x, y);
        assert_eq!(bdd.satisfying_assignments(xy), 2);
        let f = bdd.or(xy, z);
        assert_eq!(bdd.satisfying_assignments(f), 5);
    }

    #[test]
    fn probability_is_exact_under_correlation() {
        // f = (x ∧ y) ∨ (x ∧ z): P = P(x)·P(y ∨ z) — naive per-gate
        // propagation would double-count the shared x.
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let xz = bdd.and(x, z);
        let f = bdd.or(xy, xz);
        let p = [0.5, 0.25, 0.5];
        let expect = 0.5 * (1.0 - (1.0 - 0.25) * (1.0 - 0.5));
        assert!((bdd.probability(f, &p) - expect).abs() < 1e-12);
    }

    #[test]
    fn probability_matches_brute_force_on_random_functions() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = 4;
            let mut bdd = Bdd::new(n);
            // Random monotone DNF of 3 cubes.
            let mut f = NodeRef::FALSE;
            for _ in 0..3 {
                let mut cube = NodeRef::TRUE;
                for i in 0..n {
                    if rng.gen_bool(0.5) {
                        let v = bdd.var(i);
                        cube = bdd.and(cube, v);
                    }
                }
                f = bdd.or(f, cube);
            }
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0..=10) as f64 / 10.0).collect();
            let mut expect = 0.0;
            for m in 0..(1u32 << n) {
                let a: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
                if bdd.eval(f, &a) {
                    let w: f64 =
                        (0..n).map(|i| if a[i] { probs[i] } else { 1.0 - probs[i] }).product();
                    expect += w;
                }
            }
            assert!((bdd.probability(f, &probs) - expect).abs() < 1e-9);
        }
    }

    fn shared_dag() -> AttackTree {
        // r = (x ∧ y) ∨ (x ∧ z): x is shared.
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let z = b.bas("z");
        let g1 = b.and("g1", [x, y]);
        let g2 = b.and("g2", [x, z]);
        let _r = b.or("r", [g1, g2]);
        b.build().unwrap()
    }

    #[test]
    fn compiled_structure_matches_structure_function() {
        let t = shared_dag();
        let (bdd, refs) = compile_structure(&t);
        for x in Attack::all(t.bas_count()) {
            let s = t.structure(&x);
            let a: Vec<bool> =
                (0..t.bas_count()).map(|i| x.contains(cdat_core::BasId::new(i))).collect();
            for v in t.node_ids() {
                assert_eq!(bdd.eval(refs[v.index()], &a), s[v.index()], "node {}", t.name(v));
            }
        }
    }

    #[test]
    fn compiled_structure_probability_matches_treelike_propagation() {
        // On a treelike tree, BDD probability and PS propagation agree.
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let z = b.bas("z");
        let g = b.and("g", [x, y]);
        let _r = b.or("r", [g, z]);
        let t = b.build().unwrap();
        let (bdd, refs) = compile_structure(&t);
        let probs = [0.3, 0.7, 0.5];
        for attack in Attack::all(3) {
            let ps = t.probabilistic_structure(&attack, &probs).unwrap();
            let masked: Vec<f64> = (0..3)
                .map(|i| if attack.contains(cdat_core::BasId::new(i)) { probs[i] } else { 0.0 })
                .collect();
            for v in t.node_ids() {
                let via_bdd = bdd.probability(refs[v.index()], &masked);
                assert!((via_bdd - ps[v.index()]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shared_bas_probability_is_exact_where_propagation_is_not() {
        let t = shared_dag();
        let (bdd, refs) = compile_structure(&t);
        let root = refs[t.root().index()];
        let p = 0.5;
        // P((x∧y) ∨ (x∧z)) with all probs 0.5 = P(x)·P(y∨z) = 0.5·0.75.
        let exact = bdd.probability(root, &[p, p, p]);
        assert!((exact - 0.375).abs() < 1e-12);
        // The (incorrect) independent propagation would give
        // 1-(1-0.25)² = 0.4375 ≠ 0.375.
        assert!((exact - 0.4375).abs() > 1e-3);
    }

    #[test]
    fn size_reports_reachable_nodes() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.size(NodeRef::TRUE), 1);
        assert_eq!(bdd.size(x), 3); // x node + 2 terminals
        assert_eq!(bdd.size(f), 4); // two decision nodes + 2 terminals
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut bdd = Bdd::new(1);
        let _ = bdd.var(1);
    }
}
