//! Algebraic decision diagrams (ADDs): hash-consed decision diagrams with
//! `f64` terminals.
//!
//! The fused DAG solvers ([`crate::fuse`]) need more than the Boolean
//! structure function: they need the *damage function* of an attack tree as
//! a decision diagram, so that a Pareto-front recursion can staircase-merge
//! over its nodes. An [`Add`] is the multi-terminal generalization of
//! [`Bdd`](crate::Bdd): internal nodes Shannon-decompose on a variable,
//! leaves carry real values, and hash-consing keeps semantically equal
//! functions pointer-equal (terminals are interned by their exact bit
//! pattern, so "equal" means bit-equal — the fused solvers rely on this to
//! reproduce the enumerative oracle's floating-point results verbatim).
//!
//! Every constructor is fallible: the manager enforces a node budget and
//! returns [`AddLimit`] instead of exhausting memory on adversarially
//! entangled DAGs, which callers surface as a clean, cacheable error.

use std::collections::HashMap;

use crate::{Bdd, NodeRef};

/// Default node budget for fused analysis (see [`Add::new`]).
///
/// Two million nodes corresponds to a few hundred MB of peak working set —
/// far beyond any benchmarked workload, while still failing cleanly (rather
/// than thrashing) on pathological inputs.
pub const DEFAULT_NODE_LIMIT: usize = 1 << 21;

/// Reference to an ADD node inside its [`Add`] manager.
///
/// References are only meaningful for the manager that produced them.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct AddRef(u32);

/// The ADD node budget was exhausted (see [`Add::new`]).
///
/// This is the only failure mode of fused analysis: the input DAG's decision
/// diagram grew past the manager's limit. It is deterministic for a given
/// input, so callers may cache it like any other analysis error.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddLimit {
    /// The budget that was exhausted.
    pub limit: usize,
}

impl std::fmt::Display for AddLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the BDD-fused solver exceeded its decision-diagram budget of {} nodes",
            self.limit
        )
    }
}

impl std::error::Error for AddLimit {}

#[derive(Copy, Clone)]
struct ANode {
    var: u32,
    /// Child for `var = 0`; for terminals (`var == sentinel`), the index of
    /// the value in `values`.
    lo: u32,
    hi: u32,
}

#[derive(Copy, Clone, Eq, PartialEq, Hash)]
enum Op2 {
    /// Pointwise `l + r`.
    Plus,
    /// Pointwise `(1 - p)·l + p·r` for the probability whose bits these are.
    Affine(u64),
}

/// A hash-consed ADD manager over a fixed set of Boolean variables.
///
/// Variables are indexed `0..num_vars` and ordered by index (for attack
/// trees: BAS id order), compatible with the [`Bdd`] managers produced by
/// [`compile_structure`](crate::compile_structure) — [`Add::import_bdd`] and
/// [`Add::prob_transform`] import BDDs directly.
pub struct Add {
    nodes: Vec<ANode>,
    values: Vec<f64>,
    terminals: HashMap<u64, u32>,
    unique: HashMap<(u32, u32, u32), u32>,
    apply_cache: HashMap<(Op2, u32, u32), u32>,
    scale_cache: HashMap<(u64, u32), u32>,
    num_vars: usize,
    node_limit: usize,
}

impl std::fmt::Debug for Add {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Add")
            .field("num_vars", &self.num_vars)
            .field("nodes", &self.nodes.len())
            .field("terminals", &self.values.len())
            .finish()
    }
}

impl Add {
    /// Creates a manager for `num_vars` variables with a total node budget
    /// of `node_limit` (terminals included); constructors return
    /// [`AddLimit`] once it is exhausted.
    pub fn new(num_vars: usize, node_limit: usize) -> Self {
        let _ = u32::try_from(num_vars).expect("too many variables");
        Add {
            nodes: Vec::new(),
            values: Vec::new(),
            terminals: HashMap::new(),
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            scale_cache: HashMap::new(),
            num_vars,
            node_limit,
        }
    }

    /// Number of variables of the manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of live nodes in the manager (a capacity measure).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn sentinel(&self) -> u32 {
        self.num_vars as u32
    }

    fn push_node(&mut self, node: ANode) -> Result<u32, AddLimit> {
        if self.nodes.len() >= self.node_limit {
            return Err(AddLimit { limit: self.node_limit });
        }
        self.nodes.push(node);
        Ok((self.nodes.len() - 1) as u32)
    }

    fn term_idx(&mut self, value: f64) -> Result<u32, AddLimit> {
        if let Some(&i) = self.terminals.get(&value.to_bits()) {
            return Ok(i);
        }
        let sentinel = self.sentinel();
        let vi = self.values.len() as u32;
        let i = self.push_node(ANode { var: sentinel, lo: vi, hi: 0 })?;
        self.values.push(value);
        self.terminals.insert(value.to_bits(), i);
        Ok(i)
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, AddLimit> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&i) = self.unique.get(&(var, lo, hi)) {
            return Ok(i);
        }
        let i = self.push_node(ANode { var, lo, hi })?;
        self.unique.insert((var, lo, hi), i);
        Ok(i)
    }

    /// The constant function `value`.
    pub fn constant(&mut self, value: f64) -> Result<AddRef, AddLimit> {
        self.term_idx(value).map(AddRef)
    }

    /// The value of a terminal node, or `None` for internal nodes.
    pub fn terminal_value(&self, f: AddRef) -> Option<f64> {
        let n = self.nodes[f.0 as usize];
        (n.var == self.sentinel()).then(|| self.values[n.lo as usize])
    }

    /// Shannon-decomposes an internal node into `(variable, lo, hi)`:
    /// `f = if x_variable then hi else lo`. Returns `None` on terminals.
    pub fn decompose(&self, f: AddRef) -> Option<(usize, AddRef, AddRef)> {
        let n = self.nodes[f.0 as usize];
        (n.var != self.sentinel()).then_some((n.var as usize, AddRef(n.lo), AddRef(n.hi)))
    }

    /// Imports a BDD as the two-terminal ADD mapping `false ↦ lo_value` and
    /// `true ↦ hi_value`.
    ///
    /// # Panics
    ///
    /// Panics if the BDD manager ranges over a different variable count.
    pub fn import_bdd(
        &mut self,
        bdd: &Bdd,
        f: NodeRef,
        lo_value: f64,
        hi_value: f64,
    ) -> Result<AddRef, AddLimit> {
        assert_eq!(bdd.num_vars(), self.num_vars, "variable universes must agree");
        let zero = self.term_idx(lo_value)?;
        let one = self.term_idx(hi_value)?;
        let mut memo = HashMap::new();
        self.import_bdd_rec(bdd, f, zero, one, &mut memo).map(AddRef)
    }

    fn import_bdd_rec(
        &mut self,
        bdd: &Bdd,
        f: NodeRef,
        zero: u32,
        one: u32,
        memo: &mut HashMap<NodeRef, u32>,
    ) -> Result<u32, AddLimit> {
        if f == NodeRef::FALSE {
            return Ok(zero);
        }
        if f == NodeRef::TRUE {
            return Ok(one);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let (var, lo, hi) = bdd.decompose(f).expect("non-terminal");
        let l = self.import_bdd_rec(bdd, lo, zero, one, memo)?;
        let h = self.import_bdd_rec(bdd, hi, zero, one, memo)?;
        let r = self.mk(var as u32, l, h)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Imports a BDD as its *reach-probability* ADD: the function mapping an
    /// attack `x` (an assignment of the decision variables) to the exact
    /// probability that `f` holds when every attempted BAS `b ∈ x`
    /// independently succeeds with probability `probs[b]`.
    ///
    /// The terminal reached along a path is computed with **the same
    /// floating-point expression, in the same order**, as
    /// [`Bdd::probability`] over the attack-masked probability table — the
    /// fused probabilistic solver depends on this to be bit-identical to the
    /// enumerative DAG oracle.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` differs from the variable count or the BDD
    /// manager ranges over a different variable count.
    pub fn prob_transform(
        &mut self,
        bdd: &Bdd,
        f: NodeRef,
        probs: &[f64],
    ) -> Result<AddRef, AddLimit> {
        assert_eq!(bdd.num_vars(), self.num_vars, "variable universes must agree");
        assert_eq!(probs.len(), self.num_vars, "one probability per variable");
        let mut memo = HashMap::new();
        self.prob_rec(bdd, f, probs, &mut memo).map(AddRef)
    }

    fn prob_rec(
        &mut self,
        bdd: &Bdd,
        f: NodeRef,
        probs: &[f64],
        memo: &mut HashMap<NodeRef, u32>,
    ) -> Result<u32, AddLimit> {
        if f == NodeRef::FALSE {
            return self.term_idx(0.0);
        }
        if f == NodeRef::TRUE {
            return self.term_idx(1.0);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let (var, lo, hi) = bdd.decompose(f).expect("non-terminal");
        let l = self.prob_rec(bdd, lo, probs, memo)?;
        let h = self.prob_rec(bdd, hi, probs, memo)?;
        // Not attempting `var` forces its success probability to zero, which
        // collapses the Shannon decomposition to the lo cofactor exactly;
        // attempting it mixes the cofactors with the BAS's probability.
        let mixed = self.apply2(Op2::Affine(probs[var].to_bits()), l, h)?;
        let r = self.mk(var as u32, l, mixed)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Pointwise sum `a + b`.
    pub fn plus(&mut self, a: AddRef, b: AddRef) -> Result<AddRef, AddLimit> {
        self.apply2(Op2::Plus, a.0, b.0).map(AddRef)
    }

    fn apply2(&mut self, op: Op2, a: u32, b: u32) -> Result<u32, AddLimit> {
        let (na, nb) = (self.nodes[a as usize], self.nodes[b as usize]);
        let sentinel = self.sentinel();
        if na.var == sentinel && nb.var == sentinel {
            let (l, r) = (self.values[na.lo as usize], self.values[nb.lo as usize]);
            let value = match op {
                Op2::Plus => l + r,
                Op2::Affine(bits) => {
                    let p = f64::from_bits(bits);
                    (1.0 - p) * l + p * r
                }
            };
            return self.term_idx(value);
        }
        // `+` commutes bit-for-bit, so normalize its cache key.
        let key = match op {
            Op2::Plus => (op, a.min(b), a.max(b)),
            Op2::Affine(_) => (op, a, b),
        };
        if let Some(&r) = self.apply_cache.get(&key) {
            return Ok(r);
        }
        let v = na.var.min(nb.var);
        let (al, ah) = if na.var == v { (na.lo, na.hi) } else { (a, a) };
        let (bl, bh) = if nb.var == v { (nb.lo, nb.hi) } else { (b, b) };
        let lo = self.apply2(op, al, bl)?;
        let hi = self.apply2(op, ah, bh)?;
        let r = self.mk(v, lo, hi)?;
        self.apply_cache.insert(key, r);
        Ok(r)
    }

    /// Pointwise scaling `factor · a` (with `factor` as the left operand of
    /// the multiplication, matching the oracle's `damage · probability`).
    pub fn scale(&mut self, factor: f64, a: AddRef) -> Result<AddRef, AddLimit> {
        let key = (factor.to_bits(), a.0);
        if let Some(&r) = self.scale_cache.get(&key) {
            return Ok(AddRef(r));
        }
        let n = self.nodes[a.0 as usize];
        let r = if n.var == self.sentinel() {
            let v = self.values[n.lo as usize];
            self.term_idx(factor * v)?
        } else {
            let lo = self.scale(factor, AddRef(n.lo))?;
            let hi = self.scale(factor, AddRef(n.hi))?;
            self.mk(n.var, lo.0, hi.0)?
        };
        self.scale_cache.insert(key, r);
        Ok(AddRef(r))
    }

    /// Evaluates `f` under a total truth assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, f: AddRef, assignment: &[bool]) -> f64 {
        assert_eq!(assignment.len(), self.num_vars, "assignment must cover all variables");
        let mut cur = f.0;
        loop {
            let n = self.nodes[cur as usize];
            if n.var == self.sentinel() {
                return self.values[n.lo as usize];
            }
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |m| (0..n).map(|i| m >> i & 1 == 1).collect())
    }

    #[test]
    fn import_bdd_maps_terminals_and_hash_conses() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.or(x, y);
        let mut add = Add::new(2, 1 << 10);
        let a = add.import_bdd(&bdd, f, 0.0, 7.5).unwrap();
        let b = add.import_bdd(&bdd, f, 0.0, 7.5).unwrap();
        assert_eq!(a, b, "hash-consing makes equal imports identical");
        for asg in assignments(2) {
            let expect = if bdd.eval(f, &asg) { 7.5 } else { 0.0 };
            assert_eq!(add.eval(a, &asg), expect, "{asg:?}");
        }
    }

    #[test]
    fn plus_is_pointwise_and_canonical() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let f = bdd.or(xy, z);
        let mut add = Add::new(3, 1 << 10);
        let a = add.import_bdd(&bdd, f, 0.0, 3.0).unwrap();
        let b = add.import_bdd(&bdd, x, 0.0, 4.0).unwrap();
        let s1 = add.plus(a, b).unwrap();
        let s2 = add.plus(b, a).unwrap();
        assert_eq!(s1, s2, "plus commutes");
        for asg in assignments(3) {
            assert_eq!(add.eval(s1, &asg), add.eval(a, &asg) + add.eval(b, &asg), "{asg:?}");
        }
    }

    #[test]
    fn prob_transform_matches_masked_probability_bit_for_bit() {
        // f = (x ∧ y) ∨ (x ∧ z): shared x correlates the disjuncts.
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let xz = bdd.and(x, z);
        let f = bdd.or(xy, xz);
        let probs = [0.3, 0.7, 0.9];
        let mut add = Add::new(3, 1 << 10);
        let t = add.prob_transform(&bdd, f, &probs).unwrap();
        for asg in assignments(3) {
            let masked: Vec<f64> = (0..3).map(|i| if asg[i] { probs[i] } else { 0.0 }).collect();
            let expect = bdd.probability(f, &masked);
            let got = add.eval(t, &asg);
            assert_eq!(got.to_bits(), expect.to_bits(), "{asg:?}: {got} vs {expect}");
        }
    }

    #[test]
    fn scale_multiplies_terminals() {
        let mut bdd = Bdd::new(1);
        let x = bdd.var(0);
        let mut add = Add::new(1, 1 << 10);
        let a = add.import_bdd(&bdd, x, 0.5, 2.5).unwrap();
        let s = add.scale(3.0, a).unwrap();
        assert_eq!(add.eval(s, &[false]), 1.5);
        assert_eq!(add.eval(s, &[true]), 7.5);
    }

    #[test]
    fn node_budget_fails_cleanly() {
        // A parity-like sum of many distinct singleton functions forces
        // terminal and node growth past a tiny budget.
        let n = 12;
        let mut bdd = Bdd::new(n);
        let mut add = Add::new(n, 24);
        let mut acc = add.constant(0.0).unwrap();
        let mut failed = None;
        for i in 0..n {
            let v = bdd.var(i);
            let t = match add.import_bdd(&bdd, v, 0.0, (i + 1) as f64) {
                Ok(t) => t,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            match add.plus(acc, t) {
                Ok(s) => acc = s,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let err = failed.expect("budget of 24 nodes must be exhausted");
        assert_eq!(err, AddLimit { limit: 24 });
        assert!(err.to_string().contains("decision-diagram budget of 24 nodes"));
    }
}
