//! BDD-fused Pareto-front computation: exact DAG analysis for all four
//! query families.
//!
//! The bottom-up solver recurses over the *tree*, so a BAS shared between
//! two subtrees is double-counted on DAG-shaped inputs; the enumerative
//! oracle is exact but exponential in the BAS count. This module runs the
//! staircase recursion over a *decision diagram* of the queried attribute
//! instead: every attack appears on exactly one root-to-terminal path, so
//! sharing is handled exactly, and hash-consing makes the recursion
//! polynomial in the diagram size rather than the attack count.
//!
//! The pipeline, per query family:
//!
//! 1. Compile the structure function with
//!    [`compile_structure`](crate::compile_structure) (BAS `b` ↦ variable
//!    `b`, so diagram variable order is BAS id order).
//! 2. Build an [`Add`] of the queried attribute — the attack-to-value map —
//!    by combining per-node diagrams with [`Add::plus`] / [`Add::scale`] /
//!    [`Add::prob_transform`] in **the same floating-point evaluation order
//!    as the enumerative oracle**, so terminals are bit-identical to what
//!    enumeration computes.
//! 3. Run one generic front recursion ([`AttributeDomain`]-parameterized)
//!    bottom-up over the ADD with push-time dominance pruning, keeping for
//!    every surviving value the **numerically smallest witness attack** —
//!    exactly the witness the first-match-wins enumerative oracle reports.
//!
//! Byte-identity with the oracle is guaranteed for integer costs and
//! damages (the generator's decoration), plus dyadic success probabilities
//! `≥ 0.25` for the probability-maximization family; arbitrary attributes
//! remain exact up to the usual floating-point reassociation caveats.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

use cdat_core::{Attack, BasId, CdAttackTree, CdpAttackTree};
use cdat_pareto::{AttributeDomain, CdTriples, FrontEntry, MaxProb, MinTime, ParetoFront, Triple};

use crate::add::{Add, AddLimit, AddRef, DEFAULT_NODE_LIMIT};
use crate::compile_structure;

/// A front over the sub-universe below an ADD node: dominance-minimal
/// values in `cmp_key` order, each with its numerically smallest witness.
type Front<D> = Rc<Vec<(<D as AttributeDomain>::Value, Attack)>>;

/// Merges two staircase-ordered fronts, keeping the numerically smallest
/// witness among entries with bit-equal values and pruning dominated
/// values at push time.
///
/// This mirrors `Staircase::union`, except that ties between equal values
/// break on [`Attack::cmp_numeric`] instead of "self wins": the enumerative
/// oracle attaches the first matching attack in ascending bit-pattern
/// order, so the fused recursion must minimize the same order.
fn union_min_mask<D: AttributeDomain>(
    a: &[(D::Value, Attack)],
    b: &[(D::Value, Attack)],
) -> Vec<(D::Value, Attack)> {
    let mut out: Vec<(D::Value, Attack)> = Vec::with_capacity(a.len().max(b.len()));
    let mut stairs = D::Stairs::default();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                D::cmp_key(&x.0, &y.0).then_with(|| x.1.cmp_numeric(&y.1)) != Ordering::Greater
            }
            (Some(_), None) => true,
            _ => false,
        };
        let (v, w) = if take_a {
            i += 1;
            &a[i - 1]
        } else {
            j += 1;
            &b[j - 1]
        };
        // Equal values arrive adjacently with the smaller mask first; the
        // later duplicates are dropped here.
        if out.last().is_some_and(|(prev, _)| *prev == *v) {
            continue;
        }
        if D::admit(&mut stairs, v) {
            out.push((*v, w.clone()));
        }
    }
    out
}

/// The generic fused recursion: computes the Pareto front of the attribute
/// function represented by `root`, over attacks on `bas_count` BASs.
///
/// `terminal` maps a leaf value to the front entry of the empty attack in
/// its sub-universe (`None` = no useful attack, e.g. a failing scalar
/// path); `shift` folds an attempted BAS into an inherited value. Keeping
/// `shift` a caller-supplied closure (instead of `combine_and` with a unit)
/// lets each family reproduce its oracle's exact floating-point expression.
fn fused_front<D: AttributeDomain>(
    add: &Add,
    root: AddRef,
    bas_count: usize,
    terminal: &impl Fn(f64) -> Option<D::Value>,
    shift: &impl Fn(usize, &D::Value) -> D::Value,
    memo: &mut HashMap<AddRef, Front<D>>,
) -> Front<D> {
    if let Some(front) = memo.get(&root) {
        return front.clone();
    }
    let front = if let Some(t) = add.terminal_value(root) {
        match terminal(t) {
            Some(v) => vec![(v, Attack::empty(bas_count))],
            None => Vec::new(),
        }
    } else {
        let (var, lo, hi) = add.decompose(root).expect("non-terminal");
        let lo_front = fused_front::<D>(add, lo, bas_count, terminal, shift, memo);
        let hi_front = fused_front::<D>(add, hi, bas_count, terminal, shift, memo);
        // The hi cofactor's attacks additionally attempt `var`. Witnesses
        // below a node never mention the node's own variable (or any
        // smaller one), so inserting the bit keeps masks consistent.
        let shifted: Vec<(D::Value, Attack)> = hi_front
            .iter()
            .map(|(v, w)| {
                let mut w = w.clone();
                w.insert(BasId::new(var));
                (shift(var, v), w)
            })
            .collect();
        union_min_mask::<D>(&lo_front, &shifted)
    };
    let front = Rc::new(front);
    memo.insert(root, front.clone());
    front
}

fn run_front<D: AttributeDomain>(
    add: &Add,
    root: AddRef,
    bas_count: usize,
    terminal: impl Fn(f64) -> Option<D::Value>,
    shift: impl Fn(usize, &D::Value) -> D::Value,
) -> Vec<(D::Value, Attack)> {
    let mut memo: HashMap<AddRef, Front<D>> = HashMap::new();
    let front = fused_front::<D>(add, root, bas_count, &terminal, &shift, &mut memo);
    drop(memo);
    Rc::try_unwrap(front).unwrap_or_else(|rc| (*rc).clone())
}

/// Builds the damage ADD of a deterministic cd-AT: attack ↦ total damage of
/// all reached nodes, summed in ascending node order like
/// `CdAttackTree::damage_of`.
fn damage_add(cd: &CdAttackTree) -> Result<(Add, AddRef), AddLimit> {
    let tree = cd.tree();
    let (bdd, refs) = compile_structure(tree);
    let mut add = Add::new(tree.bas_count(), DEFAULT_NODE_LIMIT);
    let mut acc = add.constant(0.0)?;
    for (v, &d) in cd.damages().iter().enumerate() {
        if d != 0.0 {
            let node = add.import_bdd(&bdd, refs[v], 0.0, d)?;
            acc = add.plus(acc, node)?;
        }
    }
    Ok((add, acc))
}

/// The deterministic cost–damage Pareto front (CDPF), exact on DAGs.
///
/// Entry-for-entry identical — points and witness BAS sets — to
/// `cdat_enumerative::cdpf` for integer attributes: both cost and damage
/// are recomputed from the witness via `cost_of` / `damage_of`, so the ADD
/// terminals only steer dominance decisions.
pub fn cdpf(cd: &CdAttackTree) -> Result<ParetoFront, AddLimit> {
    let n = cd.tree().bas_count();
    let (add, root) = damage_add(cd)?;
    let costs = cd.costs();
    let entries = run_front::<CdTriples<bool>>(
        &add,
        root,
        n,
        |t| Some(Triple { cost: 0.0, damage: t, act: true }),
        |b, v| Triple { cost: v.cost + costs[b], damage: v.damage, act: true },
    );
    Ok(ParetoFront::from_entries(
        entries
            .into_iter()
            .map(|(_, w)| FrontEntry::with_witness(cd.cost_of(&w), cd.damage_of(&w), w)),
    ))
}

/// The probabilistic cost–expected-damage Pareto front (CEDPF), exact on
/// DAGs.
///
/// The expected damage of each entry is the ADD terminal itself, which
/// [`Add::prob_transform`] and [`Add::scale`] keep bit-identical to the
/// oracle's `Σ dᵥ · P(v reached)` evaluation; the cost is recomputed from
/// the witness.
pub fn cedpf(cdp: &CdpAttackTree) -> Result<ParetoFront, AddLimit> {
    let tree = cdp.tree();
    let n = tree.bas_count();
    let (bdd, refs) = compile_structure(tree);
    let mut add = Add::new(n, DEFAULT_NODE_LIMIT);
    let mut acc = add.constant(0.0)?;
    for (v, &d) in cdp.cd().damages().iter().enumerate() {
        if d != 0.0 {
            let reach = add.prob_transform(&bdd, refs[v], cdp.probs())?;
            let weighted = add.scale(d, reach)?;
            acc = add.plus(acc, weighted)?;
        }
    }
    let costs = cdp.cd().costs();
    let entries = run_front::<CdTriples<bool>>(
        &add,
        acc,
        n,
        |t| Some(Triple { cost: 0.0, damage: t, act: true }),
        |b, v| Triple { cost: v.cost + costs[b], damage: v.damage, act: true },
    );
    Ok(ParetoFront::from_entries(
        entries.into_iter().map(|(v, w)| FrontEntry::with_witness(cdp.cost_of(&w), v.damage, w)),
    ))
}

/// Minimal cost of reaching the root (the paper's min-time specialization),
/// exact on DAGs. Returns a one-entry front (cost in the value slot, damage
/// `0.0`) like the enumerative scalar oracle, or an empty front when the
/// root is unreachable.
pub fn min_time(cd: &CdAttackTree) -> Result<ParetoFront, AddLimit> {
    let tree = cd.tree();
    let n = tree.bas_count();
    let (bdd, refs) = compile_structure(tree);
    let mut add = Add::new(n, DEFAULT_NODE_LIMIT);
    let root = add.import_bdd(&bdd, refs[tree.root().index()], 0.0, 1.0)?;
    let costs = cd.costs();
    let entries =
        run_front::<MinTime>(&add, root, n, |t| (t == 1.0).then_some(0.0), |b, v| v + costs[b]);
    Ok(ParetoFront::from_entries(
        entries.into_iter().map(|(_, w)| FrontEntry::with_witness(cd.cost_of(&w), 0.0, w)),
    ))
}

/// Maximal success probability of reaching the root, exact on DAGs. Returns
/// a one-entry front (probability in the value slot, damage `0.0`), or an
/// empty front when the root is unreachable.
pub fn max_prob(cdp: &CdpAttackTree) -> Result<ParetoFront, AddLimit> {
    let tree = cdp.tree();
    let n = tree.bas_count();
    let (bdd, refs) = compile_structure(tree);
    let mut add = Add::new(n, DEFAULT_NODE_LIMIT);
    let root = add.import_bdd(&bdd, refs[tree.root().index()], 0.0, 1.0)?;
    let probs = cdp.probs();
    let entries =
        run_front::<MaxProb>(&add, root, n, |t| (t == 1.0).then_some(1.0), |b, v| v * probs[b]);
    Ok(ParetoFront::from_entries(entries.into_iter().map(|(_, w)| {
        let p = w.iter().map(|b| cdp.prob(b)).product::<f64>();
        FrontEntry::with_witness(p, 0.0, w)
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::AttackTreeBuilder;

    /// r = (x ∧ y) ∨ (x ∧ z) with x shared: the canonical shape where the
    /// tree recursion double-counts x's cost and damage.
    fn shared_dag() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let z = b.bas("z");
        let left = b.and("left", [x, y]);
        let right = b.and("right", [x, z]);
        let _root = b.or("root", [left, right]);
        let tree = b.build().expect("valid dag");
        assert!(!tree.is_treelike());
        CdAttackTree::builder(tree)
            .cost("x", 5.0)
            .and_then(|b| b.cost("y", 3.0))
            .and_then(|b| b.cost("z", 4.0))
            .and_then(|b| b.damage("x", 1.0))
            .and_then(|b| b.damage("left", 10.0))
            .and_then(|b| b.damage("right", 20.0))
            .and_then(|b| b.damage("root", 100.0))
            .and_then(|b| b.finish())
            .expect("valid attributes")
    }

    fn brute_cdpf(cd: &CdAttackTree) -> ParetoFront {
        let n = cd.tree().bas_count();
        ParetoFront::from_entries(
            Attack::all(n).map(|x| FrontEntry::with_witness(cd.cost_of(&x), cd.damage_of(&x), x)),
        )
    }

    #[test]
    fn cdpf_matches_brute_force_on_a_shared_dag() {
        let cd = shared_dag();
        let fused = cdpf(&cd).expect("within budget");
        let oracle = brute_cdpf(&cd);
        assert_eq!(fused, oracle, "fused {fused:?} vs oracle {oracle:?}");
    }

    #[test]
    fn witnesses_are_the_numerically_smallest_attacks() {
        // Two BASs with identical attributes: the oracle reports the one
        // with the smaller bit pattern.
        let mut b = AttackTreeBuilder::new();
        let p = b.bas("p");
        let q = b.bas("q");
        let _root = b.or("root", [p, q]);
        let tree = b.build().expect("valid tree");
        let cd = CdAttackTree::builder(tree)
            .cost("p", 2.0)
            .and_then(|b| b.cost("q", 2.0))
            .and_then(|b| b.damage("root", 9.0))
            .and_then(|b| b.finish())
            .expect("valid attributes");
        let fused = cdpf(&cd).expect("within budget");
        let oracle = brute_cdpf(&cd);
        assert_eq!(fused, oracle);
        let witnesses: Vec<_> =
            fused.entries().iter().map(|e| e.witness.clone().expect("witness")).collect();
        assert!(witnesses.contains(&Attack::from_bas_ids(2, [BasId::new(0)])));
    }

    #[test]
    fn min_time_picks_the_cheapest_reaching_attack() {
        let cd = shared_dag();
        let front = min_time(&cd).expect("within budget");
        let entries = front.entries();
        assert_eq!(entries.len(), 1);
        // Cheapest root-reaching attack: {x, y} at cost 8 (tree recursion
        // would price the right branch at 5 + 4 = 9, and a double-counting
        // bottom-up pass would see 2·5 under the disjunction).
        assert_eq!(entries[0].point.cost, 8.0);
        assert_eq!(
            entries[0].witness.as_ref().expect("witness"),
            &Attack::from_bas_ids(3, [BasId::new(0), BasId::new(1)])
        );
    }

    #[test]
    fn probabilistic_families_match_the_bdd_oracle_bitwise() {
        let cd = shared_dag();
        let cdp = CdpAttackTree::from_parts(cd.clone(), vec![0.5, 0.75, 0.25])
            .expect("valid probabilities");

        // Oracle: exhaustive expected damage over the structure BDD.
        let tree = cdp.tree();
        let n = tree.bas_count();
        let (bdd, refs) = compile_structure(tree);
        let damage_nodes: Vec<(usize, f64)> = cd
            .damages()
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != 0.0)
            .map(|(i, &d)| (i, d))
            .collect();
        let oracle = ParetoFront::from_entries(Attack::all(n).map(|x| {
            let masked: Vec<f64> = (0..n)
                .map(|i| if x.contains(BasId::new(i)) { cdp.prob(BasId::new(i)) } else { 0.0 })
                .collect();
            let ed: f64 =
                damage_nodes.iter().map(|&(i, d)| d * bdd.probability(refs[i], &masked)).sum();
            FrontEntry::with_witness(cdp.cost_of(&x), ed, x)
        }));
        let fused = cedpf(&cdp).expect("within budget");
        assert_eq!(fused, oracle, "fused {fused:?} vs oracle {oracle:?}");

        // Max-prob: best product over root-reaching attacks, smallest mask.
        let root_ref = refs[tree.root().index()];
        let mut best: Option<(f64, Attack)> = None;
        for x in Attack::all(n) {
            let asg: Vec<bool> = (0..n).map(|i| x.contains(BasId::new(i))).collect();
            if !bdd.eval(root_ref, &asg) {
                continue;
            }
            let p = x.iter().map(|b| cdp.prob(b)).product::<f64>();
            if best.as_ref().is_none_or(|(bp, _)| p > *bp) {
                best = Some((p, x));
            }
        }
        let (bp, bx) = best.expect("root reachable");
        let front = max_prob(&cdp).expect("within budget");
        assert_eq!(front.entries().len(), 1);
        assert_eq!(front.entries()[0].point.cost.to_bits(), bp.to_bits());
        assert_eq!(front.entries()[0].witness.as_ref().expect("witness"), &bx);
    }

    #[test]
    fn single_bas_scalars_behave() {
        let mut b = AttackTreeBuilder::new();
        b.bas("x");
        let tree = b.build().expect("valid tree");
        let cd = CdAttackTree::builder(tree)
            .cost("x", 1.5)
            .and_then(|b| b.damage("x", 2.0))
            .and_then(|b| b.finish())
            .expect("valid attributes");
        let front = min_time(&cd).expect("within budget");
        assert_eq!(front.entries().len(), 1);
        assert_eq!(front.entries()[0].point.cost, 1.5);
        let cdp = CdpAttackTree::from_parts(cd, vec![0.25]).expect("valid probabilities");
        let front = max_prob(&cdp).expect("within budget");
        assert_eq!(front.entries().len(), 1);
        assert_eq!(front.entries()[0].point.cost, 0.25);
    }
}
