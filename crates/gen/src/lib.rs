//! Random attack-tree generation by combining literature building blocks.
//!
//! Reproduces the generator of the paper's Section X-D (adapted from \[39\]):
//! starting from a random Table IV block, repeatedly combine with further
//! blocks via one of three operations until a target size is reached:
//!
//! 1. [`CombineOp::Graft`] — replace a random BAS of the first AT with the
//!    root of the second (joins the trees);
//! 2. [`CombineOp::Join`] — give the two roots a common parent of random
//!    type;
//! 3. [`CombineOp::JoinIdentify`] — like `Join`, but additionally identify a
//!    random BAS from each side, creating a shared node (hence a DAG).
//!
//! [`generate_suite`] reproduces the paper's test suites: for each
//! `1 ≤ n ≤ 100`, five ATs with at least `n` nodes — `T_tree` uses only
//! treelike blocks and the first two operations, `T_DAG` uses everything.
//! [`decorate`]/[`decorate_prob`] attach the paper's random attributes
//! (`c ∈ {1..10}`, `d ∈ {0..10}`, `p ∈ {0.1,…,1.0}`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cdat_core::{AttackTree, AttackTreeBuilder, CdAttackTree, CdpAttackTree, NodeId, NodeType};
use cdat_models::blocks::{self, Block};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One of the three combination operations of \[39\].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum CombineOp {
    /// Replace a random BAS of the first AT with the second AT's root.
    Graft,
    /// Put both roots under a fresh random-typed root.
    Join,
    /// `Join`, plus identification of one random BAS from each side
    /// (introduces sharing, so the result is DAG-like).
    JoinIdentify,
}

/// Copies `tree` into `builder` with fresh names; `skip` maps one original
/// node to an already-inserted replacement instead of copying it.
fn copy_tree(
    builder: &mut AttackTreeBuilder,
    tree: &AttackTree,
    counter: &mut usize,
    skip: Option<(NodeId, NodeId)>,
) -> Vec<NodeId> {
    let mut map: Vec<Option<NodeId>> = vec![None; tree.node_count()];
    for v in tree.node_ids() {
        if let Some((old, replacement)) = skip {
            if v == old {
                map[v.index()] = Some(replacement);
                continue;
            }
        }
        let name = format!("n{}", *counter);
        *counter += 1;
        let id = match tree.node_type(v) {
            NodeType::Bas => builder.bas(&name),
            ty => {
                let children: Vec<NodeId> = tree
                    .children(v)
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                builder.gate(&name, ty, children)
            }
        };
        map[v.index()] = Some(id);
    }
    map.into_iter().map(|m| m.expect("every node mapped")).collect()
}

fn random_bas(tree: &AttackTree, rng: &mut impl Rng) -> NodeId {
    let b = rng.gen_range(0..tree.bas_count());
    tree.node_of_bas(cdat_core::BasId::new(b))
}

/// Combines two attack trees with the given operation.
///
/// Names are regenerated, so the inputs may share names freely. The result
/// of `Graft` and `Join` is treelike whenever both inputs are;
/// `JoinIdentify` always introduces a shared BAS (except in the degenerate
/// case where both trees are single BASs, which falls back to `Join`).
pub fn combine(a: &AttackTree, b: &AttackTree, op: CombineOp, rng: &mut impl Rng) -> AttackTree {
    let mut builder = AttackTreeBuilder::new();
    let mut counter = 0usize;
    let tree = match op {
        CombineOp::Graft => {
            let map_b = copy_tree(&mut builder, b, &mut counter, None);
            let replacement = map_b[b.root().index()];
            let target = random_bas(a, rng);
            copy_tree(&mut builder, a, &mut counter, Some((target, replacement)));
            builder
        }
        CombineOp::Join | CombineOp::JoinIdentify => {
            let map_a = copy_tree(&mut builder, a, &mut counter, None);
            let skip = if op == CombineOp::JoinIdentify {
                let ba = map_a[random_bas(a, rng).index()];
                Some((random_bas(b, rng), ba))
            } else {
                None
            };
            let map_b = copy_tree(&mut builder, b, &mut counter, skip);
            let (ra, rb) = (map_a[a.root().index()], map_b[b.root().index()]);
            let ty = if rng.gen_bool(0.5) { NodeType::Or } else { NodeType::And };
            let name = format!("n{counter}");
            if ra == rb {
                // Degenerate JoinIdentify of two single-BAS trees: nothing to
                // join; keep the single node as root.
            } else {
                builder.gate(&name, ty, [ra, rb]);
            }
            builder
        }
    };
    tree.build().expect("combination of valid trees is valid")
}

/// Configuration for [`generate_suite`].
#[derive(Copy, Clone, Debug)]
pub struct SuiteConfig {
    /// Use only treelike blocks and shape-preserving operations (`T_tree`)
    /// instead of all blocks and operations (`T_DAG`).
    pub treelike: bool,
    /// Largest size target `n` (the paper uses 100).
    pub max_target: usize,
    /// ATs per size target (the paper uses 5, for 500 ATs total).
    pub per_target: usize,
    /// RNG seed, for reproducible suites.
    pub seed: u64,
}

impl SuiteConfig {
    /// The paper's `T_tree` configuration (500 treelike ATs).
    pub fn tree_suite(seed: u64) -> Self {
        SuiteConfig { treelike: true, max_target: 100, per_target: 5, seed }
    }

    /// The paper's `T_DAG` configuration (500 DAG ATs).
    pub fn dag_suite(seed: u64) -> Self {
        SuiteConfig { treelike: false, max_target: 100, per_target: 5, seed }
    }
}

/// Generates one random AT with at least `target` nodes by combining blocks.
pub fn random_at(
    rng: &mut impl Rng,
    available: &[Block],
    ops: &[CombineOp],
    target: usize,
) -> AttackTree {
    let mut tree = (available[rng.gen_range(0..available.len())].build)();
    while tree.node_count() < target {
        let other = (available[rng.gen_range(0..available.len())].build)();
        let op = ops[rng.gen_range(0..ops.len())];
        tree = combine(&tree, &other, op, rng);
    }
    tree
}

/// Generates the paper's random suite: for each `1 ≤ n ≤ max_target`,
/// `per_target` ATs with `|N| ≥ n`.
pub fn generate_suite(config: SuiteConfig) -> Vec<AttackTree> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (available, ops): (Vec<Block>, &[CombineOp]) = if config.treelike {
        (blocks::treelike(), &[CombineOp::Graft, CombineOp::Join])
    } else {
        (blocks::all(), &[CombineOp::Graft, CombineOp::Join, CombineOp::JoinIdentify])
    };
    let mut suite = Vec::with_capacity(config.max_target * config.per_target);
    for target in 1..=config.max_target {
        for _ in 0..config.per_target {
            suite.push(random_at(&mut rng, &available, ops, target));
        }
    }
    suite
}

/// Decorates a tree with the paper's random attributes: integer costs in
/// `{1,…,10}` on BASs and integer damages in `{0,…,10}` on every node.
pub fn decorate(tree: AttackTree, rng: &mut impl Rng) -> CdAttackTree {
    let cost: Vec<f64> = (0..tree.bas_count()).map(|_| rng.gen_range(1..=10) as f64).collect();
    let damage: Vec<f64> = (0..tree.node_count()).map(|_| rng.gen_range(0..=10) as f64).collect();
    CdAttackTree::from_parts(tree, cost, damage).expect("random attributes are valid")
}

/// [`decorate`] with damage concentrated on a few nodes: each node carries
/// a damage in `{1,…,10}` with probability `density` (the root always
/// does), and `0` otherwise.
///
/// Dense damage makes the fused solver's damage diagram track one state
/// per distinct partial damage sum, which outgrows the diagram budget on
/// 100+-BAS suites; sparse damage keeps those suites solvable and matches
/// the case studies, where damage sits at a handful of assets rather than
/// at every gate.
pub fn decorate_sparse(tree: AttackTree, rng: &mut impl Rng, density: f64) -> CdAttackTree {
    assert!((0.0..=1.0).contains(&density), "density must lie in [0, 1]");
    let root = tree.root();
    let cost: Vec<f64> = (0..tree.bas_count()).map(|_| rng.gen_range(1..=10) as f64).collect();
    let damage: Vec<f64> = (0..tree.node_count())
        .map(|v| {
            if v == root.index() || rng.gen_bool(density) {
                rng.gen_range(1..=10) as f64
            } else {
                0.0
            }
        })
        .collect();
    CdAttackTree::from_parts(tree, cost, damage).expect("random attributes are valid")
}

/// [`decorate`] plus random success probabilities in `{0.1, 0.2, …, 1.0}`.
pub fn decorate_prob(tree: AttackTree, rng: &mut impl Rng) -> CdpAttackTree {
    let n = tree.bas_count();
    let cd = decorate(tree, rng);
    let prob: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=10) as f64 / 10.0).collect();
    CdpAttackTree::from_parts(cd, prob).expect("random probabilities are valid")
}

/// Builds a renamed, reordered, renumbered — but structurally and
/// semantically identical — copy of a decorated tree.
///
/// The copy inserts nodes in a *random topological order* (so node and BAS
/// ids are permuted), shuffles every gate's child order, regenerates all
/// names, and carries each node's attributes along to its new id. Its
/// canonical structural hash therefore equals the original's, while its BAS
/// numbering generally does not — exactly the situation the engine's
/// witness-preserving dedup must handle, and what this generator exists to
/// exercise.
pub fn isomorphic_copy(cdp: &CdpAttackTree, rng: &mut impl Rng) -> CdpAttackTree {
    let tree = cdp.tree();
    let n = tree.node_count();
    let mut builder = AttackTreeBuilder::new();
    // map[old node] = new id, filled in random topological order: a node
    // becomes ready once all its children are inserted.
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    let mut waiting: Vec<usize> = tree.node_ids().map(|v| tree.children(v).len()).collect();
    let mut ready: Vec<NodeId> = tree.node_ids().filter(|&v| tree.children(v).is_empty()).collect();
    let mut counter = 0usize;
    while !ready.is_empty() {
        let v = ready.swap_remove(rng.gen_range(0..ready.len()));
        let name = format!("m{counter}");
        counter += 1;
        let id = match tree.node_type(v) {
            NodeType::Bas => builder.bas(&name),
            ty => {
                let mut children: Vec<NodeId> = tree
                    .children(v)
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                // Shuffle sibling order (semantically irrelevant).
                for i in (1..children.len()).rev() {
                    children.swap(i, rng.gen_range(0..=i));
                }
                builder.gate(&name, ty, children)
            }
        };
        map[v.index()] = Some(id);
        for &p in tree.parents(v) {
            waiting[p.index()] -= 1;
            if waiting[p.index()] == 0 {
                ready.push(p);
            }
        }
    }
    let copy = builder.build().expect("copy of a valid tree is valid");

    // Carry the attributes over to the permuted ids.
    let mut damage = vec![0.0; n];
    let mut cost = vec![0.0; copy.bas_count()];
    let mut prob = vec![1.0; copy.bas_count()];
    for v in tree.node_ids() {
        let new = map[v.index()].expect("every node copied");
        damage[new.index()] = cdp.cd().damage(v);
        if let Some(b) = tree.bas_of_node(v) {
            let nb = copy.bas_of_node(new).expect("BASs stay BASs");
            cost[nb.index()] = cdp.cd().cost(b);
            prob[nb.index()] = cdp.prob(b);
        }
    }
    let cd = CdAttackTree::from_parts(copy, cost, damage).expect("attributes carried verbatim");
    CdpAttackTree::from_parts(cd, prob).expect("probabilities carried verbatim")
}

/// Generates a small random attack tree for cross-validation tests: top-down
/// expansion to at most `max_bas` BASs; treelike, or with extra sharing
/// injected when `treelike` is `false`.
///
/// Unlike [`random_at`], sizes start at a single BAS, so exhaustive
/// reference analyses stay feasible.
pub fn random_small(rng: &mut impl Rng, max_bas: usize, treelike: bool) -> AttackTree {
    assert!(max_bas >= 1, "need at least one BAS");
    let mut builder = AttackTreeBuilder::new();
    let mut counter = 0usize;
    let mut leaves: Vec<NodeId> = Vec::new();
    // Grow a random gate skeleton bottom-up.
    let n_bas = rng.gen_range(1..=max_bas);
    for _ in 0..n_bas {
        let name = format!("n{counter}");
        counter += 1;
        leaves.push(builder.bas(&name));
    }
    let mut roots = leaves.clone();
    while roots.len() > 1 {
        let arity = rng.gen_range(2..=3.min(roots.len()));
        let mut children: Vec<NodeId> = Vec::with_capacity(arity + 1);
        for _ in 0..arity {
            let i = rng.gen_range(0..roots.len());
            children.push(roots.swap_remove(i));
        }
        // Optional sharing: adopt an extra, already-parented node, giving
        // it a second parent (what makes the result DAG-like).
        if !treelike && rng.gen_bool(0.5) {
            let parented: Vec<NodeId> = (0..counter)
                .map(NodeId::new)
                .filter(|n| !roots.contains(n) && !children.contains(n))
                .collect();
            if !parented.is_empty() {
                children.push(parented[rng.gen_range(0..parented.len())]);
            }
        }
        let ty = if rng.gen_bool(0.5) { NodeType::Or } else { NodeType::And };
        let name = format!("n{counter}");
        counter += 1;
        roots.push(builder.gate(&name, ty, children));
    }
    builder.build().expect("random small tree is valid")
}

/// Generates a DAG-heavy random attack tree with **exactly** `bas` BASs
/// and a controllable `sharing` factor in `[0, 1]`.
///
/// BASs are created in clusters of 4–7, each folded into a small random
/// gate tree; every cluster additionally adopts each BAS of the *previous*
/// cluster with probability `sharing`, giving those BASs a second parent
/// (the DAG edges). Cluster roots are then chained under random gates.
/// Sharing is deliberately local — only adjacent clusters overlap — so the
/// BDD of the structure function under the natural BAS order stays small
/// and the BDD-fused solver scales to hundreds of BASs, while the
/// enumerative path is infeasible past [`cdat_enumerative::MAX_ENUM_BAS`]
/// (not a dependency of this crate; the cap is 30).
///
/// `sharing = 0.0` yields a treelike AT; at `0.5` most multi-cluster
/// results are DAGs.
pub fn random_dag(rng: &mut impl Rng, bas: usize, sharing: f64) -> AttackTree {
    assert!(bas >= 1, "need at least one BAS");
    assert!((0.0..=1.0).contains(&sharing), "sharing factor must be in [0, 1]");
    let mut builder = AttackTreeBuilder::new();
    let mut counter = 0usize;
    let mut remaining = bas;
    let mut cluster_roots: Vec<NodeId> = Vec::new();
    let mut previous_cluster: Vec<NodeId> = Vec::new();
    while remaining > 0 {
        let size = rng.gen_range(4..=7usize).min(remaining);
        remaining -= size;
        let fresh: Vec<NodeId> = (0..size)
            .map(|_| {
                let name = format!("n{counter}");
                counter += 1;
                builder.bas(&name)
            })
            .collect();
        let mut roots = fresh.clone();
        for &shared in &previous_cluster {
            if rng.gen_bool(sharing) {
                roots.push(shared);
            }
        }
        // Fold the cluster's leaves into a small random gate tree.
        while roots.len() > 1 {
            let arity = rng.gen_range(2..=3.min(roots.len()));
            let mut children: Vec<NodeId> = Vec::with_capacity(arity);
            for _ in 0..arity {
                let i = rng.gen_range(0..roots.len());
                children.push(roots.swap_remove(i));
            }
            let ty = if rng.gen_bool(0.5) { NodeType::Or } else { NodeType::And };
            let name = format!("n{counter}");
            counter += 1;
            roots.push(builder.gate(&name, ty, children));
        }
        cluster_roots.push(roots[0]);
        previous_cluster = fresh;
    }
    // Chain the cluster roots under random gates (keeps sharing local in
    // the final topological order too).
    let mut acc = cluster_roots[0];
    for &root in &cluster_roots[1..] {
        let ty = if rng.gen_bool(0.5) { NodeType::Or } else { NodeType::And };
        let name = format!("n{counter}");
        counter += 1;
        acc = builder.gate(&name, ty, [acc, root]);
    }
    builder.build().expect("random DAG-heavy tree is valid")
}

/// One call, one DAG suite: `count` independently drawn [`random_dag`]
/// trees with exactly `bas` BASs each and the given sharing factor —
/// the generator mode behind the `dag_cdpf_*` bench scenarios and the CI
/// `dag-smoke` suite, where 50–200-BAS DAG workloads are needed in bulk.
pub fn dag_heavy_suite(count: usize, bas: usize, sharing: f64, seed: u64) -> Vec<AttackTree> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_dag(&mut rng, bas, sharing)).collect()
}

/// [`dag_heavy_suite`] decorated in one deterministic call: the same seed
/// drives structure and attributes, so callers that hold no RNG of their
/// own (the `cdat gen` subcommand, the CI dag-smoke script) reproduce a
/// whole suite from `(count, bas, sharing, density, seed)` alone. Damage
/// is drawn per [`decorate_sparse`] — `density` `1.0` puts damage on every
/// node, smaller values keep 100+-BAS suites inside the fused solver's
/// diagram budget — and every BAS gets a success probability in
/// `{0.1, …, 1.0}` as in [`decorate_prob`].
pub fn decorated_dag_suite(
    count: usize,
    bas: usize,
    sharing: f64,
    density: f64,
    seed: u64,
) -> Vec<CdpAttackTree> {
    // A distinct stream for the attributes: the trees see exactly the
    // draws `dag_heavy_suite(_, _, _, seed)` makes.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77E);
    dag_heavy_suite(count, bas, sharing, seed)
        .into_iter()
        .map(|tree| {
            let n = tree.bas_count();
            let cd = decorate_sparse(tree, &mut rng, density);
            let prob: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=10) as f64 / 10.0).collect();
            CdpAttackTree::from_parts(cd, prob).expect("random probabilities are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graft_preserves_node_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = blocks::arnold2014_fig3();
        let b = blocks::kordy2018_fig1();
        let g = combine(&a, &b, CombineOp::Graft, &mut rng);
        // Graft removes one BAS of `a` and adds all of `b`.
        assert_eq!(g.node_count(), a.node_count() + b.node_count() - 1);
        assert!(g.is_treelike());
    }

    #[test]
    fn join_adds_one_root() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = blocks::arnold2014_fig3();
        let b = blocks::arnold2014_fig5();
        let j = combine(&a, &b, CombineOp::Join, &mut rng);
        assert_eq!(j.node_count(), a.node_count() + b.node_count() + 1);
        assert!(j.is_treelike());
    }

    #[test]
    fn join_identify_creates_sharing() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = blocks::arnold2014_fig3();
        let b = blocks::arnold2014_fig5();
        let j = combine(&a, &b, CombineOp::JoinIdentify, &mut rng);
        // One BAS of `b` is merged away, one root is added.
        assert_eq!(j.node_count(), a.node_count() + b.node_count());
        assert!(!j.is_treelike(), "identified BAS must have two parents");
    }

    #[test]
    fn tree_suite_is_treelike_and_sized() {
        let suite =
            generate_suite(SuiteConfig { treelike: true, max_target: 30, per_target: 2, seed: 9 });
        assert_eq!(suite.len(), 60);
        for (i, t) in suite.iter().enumerate() {
            let target = i / 2 + 1;
            assert!(t.is_treelike(), "suite AT {i} must be treelike");
            assert!(t.node_count() >= target, "suite AT {i} too small");
        }
    }

    #[test]
    fn dag_suite_contains_dags() {
        let suite = generate_suite(SuiteConfig {
            treelike: false,
            max_target: 40,
            per_target: 2,
            seed: 10,
        });
        assert!(suite.iter().any(|t| !t.is_treelike()), "T_DAG should contain DAGs");
    }

    #[test]
    fn suites_are_reproducible_by_seed() {
        let cfg = SuiteConfig { treelike: false, max_target: 10, per_target: 2, seed: 42 };
        let a = generate_suite(cfg);
        let b = generate_suite(cfg);
        let sizes_a: Vec<usize> = a.iter().map(|t| t.node_count()).collect();
        let sizes_b: Vec<usize> = b.iter().map(|t| t.node_count()).collect();
        assert_eq!(sizes_a, sizes_b);
    }

    #[test]
    fn decoration_respects_the_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let tree = blocks::arnold2014_fig5();
        let cdp = decorate_prob(tree, &mut rng);
        for b in cdp.tree().bas_ids() {
            let c = cdp.cd().cost(b);
            assert!((1.0..=10.0).contains(&c) && c.fract() == 0.0);
            let p = cdp.prob(b);
            assert!((0.1..=1.0).contains(&p));
        }
        for v in cdp.tree().node_ids() {
            let d = cdp.cd().damage(v);
            assert!((0.0..=10.0).contains(&d) && d.fract() == 0.0);
        }
    }

    #[test]
    fn random_small_generates_valid_trees_of_both_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut saw_dag = false;
        for _ in 0..100 {
            let t = random_small(&mut rng, 6, true);
            assert!(t.is_treelike());
            assert!(t.bas_count() <= 6 && t.bas_count() >= 1);
            let d = random_small(&mut rng, 6, false);
            saw_dag |= !d.is_treelike();
        }
        assert!(saw_dag, "sharing injection should produce some DAGs");
    }

    #[test]
    fn isomorphic_copies_share_hashes_but_permute_numbering() {
        use cdat_core::canonical::{hash_cd, hash_cdp};
        let mut rng = StdRng::seed_from_u64(11);
        let mut permuted = false;
        for i in 0..30 {
            let treelike = rng.gen_bool(0.5);
            let tree = random_small(&mut rng, 8, treelike);
            let cdp = decorate_prob(tree, &mut rng);
            let copy = isomorphic_copy(&cdp, &mut rng);
            assert_eq!(hash_cdp(&cdp), hash_cdp(&copy), "case {i}: cdp hashes must agree");
            assert_eq!(hash_cd(cdp.cd()), hash_cd(copy.cd()), "case {i}: cd hashes must agree");
            assert_eq!(copy.tree().node_count(), cdp.tree().node_count());
            assert_eq!(copy.tree().bas_count(), cdp.tree().bas_count());
            assert_eq!(copy.cd().max_damage(), cdp.cd().max_damage(), "case {i}");
            assert_eq!(copy.cd().total_cost(), cdp.cd().total_cost(), "case {i}");
            permuted |= copy.cd().costs() != cdp.cd().costs();
        }
        assert!(permuted, "30 shuffles must permute at least one cost table");
    }

    #[test]
    fn dag_heavy_suites_hit_the_exact_bas_count_and_share() {
        for bas in [1, 5, 20, 120] {
            let suite = dag_heavy_suite(4, bas, 0.5, 77);
            assert_eq!(suite.len(), 4);
            for (i, t) in suite.iter().enumerate() {
                assert_eq!(t.bas_count(), bas, "suite AT {i} at target {bas}");
                assert!(t.reaches_root(&t.full_attack()));
            }
        }
        // At sharing 0.5, multi-cluster trees are overwhelmingly DAGs …
        let suite = dag_heavy_suite(10, 40, 0.5, 78);
        assert!(
            suite.iter().filter(|t| !t.is_treelike()).count() >= 9,
            "a 0.5 sharing factor must produce DAGs"
        );
        // … and sharing 0 turns the generator treelike.
        assert!(dag_heavy_suite(10, 40, 0.0, 79).iter().all(|t| t.is_treelike()));
    }

    #[test]
    fn dag_heavy_suites_are_reproducible_by_seed() {
        let a = dag_heavy_suite(3, 60, 0.4, 42);
        let b = dag_heavy_suite(3, 60, 0.4, 42);
        let sizes_a: Vec<usize> = a.iter().map(|t| t.node_count()).collect();
        let sizes_b: Vec<usize> = b.iter().map(|t| t.node_count()).collect();
        assert_eq!(sizes_a, sizes_b);
    }

    #[test]
    fn combined_trees_evaluate_consistently() {
        // The structure function of a Join is the OR/AND of the halves.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = random_small(&mut rng, 3, true);
            let b = random_small(&mut rng, 3, true);
            let j = combine(&a, &b, CombineOp::Join, &mut rng);
            assert_eq!(j.bas_count(), a.bas_count() + b.bas_count());
            // Full attack reaches the root (monotone functions, all inputs 1
            // ⇒ every gate fires).
            assert!(j.reaches_root(&j.full_attack()));
            assert!(!j.reaches_root(&j.empty_attack()));
        }
    }
}
