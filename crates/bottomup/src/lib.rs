//! Bottom-up cost-damage solvers for treelike attack trees.
//!
//! This crate implements the paper's central algorithmic contribution
//! (Sections VI and IX): a single bottom-up pass that computes, for every
//! node `v`, the Pareto front `C_U(v)` of attribute triples
//! `(cost, damage, activation)` of attacks on the sub-tree below `v`. Because
//! a treelike AT has disjoint child sub-trees, the fronts of the children of
//! a gate combine independently:
//!
//! * costs and damages add,
//! * activations conjoin (`AND`) or disjoin (`OR`),
//! * the node's own damage is added once, weighted by the resulting
//!   activation,
//! * triples that exceed the cost budget or are ⊑-dominated are discarded
//!   (`min_U`).
//!
//! The third coordinate is essential: an attack that is locally dominated but
//! activates its node can become optimal at an ancestor (paper Example 4).
//! The [`ablation`] module contains the *unsound* two-dimensional variant for
//! exactly that demonstration.
//!
//! All entry points work directly on n-ary gates (folding children pairwise,
//! which is equivalent to binarizing first) and return witness attacks along
//! with each Pareto point.
//!
//! # Problems solved
//!
//! | problem | deterministic | probabilistic |
//! |---------|---------------|---------------|
//! | Pareto front | [`cdpf`] (Thm 4) | [`cedpf`] (Thm 9) |
//! | max damage given budget | [`dgc`] (Thm 3) | [`edgc`] (Thm 8) |
//! | min cost given damage | [`cgd`] | [`cged`] |
//!
//! # Example
//!
//! ```
//! use cdat_core::{AttackTreeBuilder, CdAttackTree};
//! use cdat_bottomup::cdpf;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = AttackTreeBuilder::new();
//! let ca = b.bas("ca");
//! let pb = b.bas("pb");
//! let fd = b.bas("fd");
//! let dr = b.and("dr", [pb, fd]);
//! let _ps = b.or("ps", [ca, dr]);
//! let cd = CdAttackTree::builder(b.build()?)
//!     .cost("ca", 1.0)?.cost("pb", 3.0)?.cost("fd", 2.0)?
//!     .damage("fd", 10.0)?.damage("dr", 100.0)?.damage("ps", 200.0)?
//!     .finish()?;
//! let front = cdpf(&cd)?;
//! assert_eq!(front.to_string(), "{(0, 0), (1, 200), (3, 210), (5, 310)}");
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod delta;
mod recursion;
mod solver;

pub use delta::{retain_cdpf, retain_cedpf, DeltaStats, RetainedFronts};
pub use solver::{cdpf, cedpf, cgd, cged, dgc, edgc, max_prob, min_time, BottomUp};
