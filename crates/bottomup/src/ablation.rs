//! Ablation variants that demonstrate *why* the main algorithm is shaped the
//! way it is.
//!
//! These are **not** part of the supported analysis API. They exist so the
//! benchmark suite (and curious readers) can measure and observe the design
//! decisions called out in DESIGN.md.

use cdat_core::{Attack, CdAttackTree, NodeType, NotTreelike};
use cdat_pareto::{CostDamage, ParetoFront};

/// The naive two-dimensional bottom-up: propagate `(cost, damage)` pairs only
/// and Pareto-prune them at every node, **without** the activation
/// coordinate.
///
/// This is the natural-but-wrong generalization of prior Pareto work to
/// cost-damage analysis; the paper's Example 4 shows it loses optimal
/// attacks (it discards a child attack that pays for activation before the
/// payoff at an ancestor is visible). It is exposed so tests and benches can
/// demonstrate the failure: on the factory example it reports a front that
/// misses `(5, 310)`.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cdpf_without_activation_dimension(cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
    let tree = cd.tree();
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    // Pairs (cost, damage-if-this-subtree-alone, reached) — but pruning
    // ignores `reached`, which is the deliberate mistake under study.
    type Pair = (f64, f64, bool);
    let mut fronts: Vec<Option<Vec<Pair>>> = vec![None; tree.node_count()];
    for v in tree.node_ids() {
        let front: Vec<Pair> = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has BAS id");
                prune_2d(vec![(0.0, 0.0, false), (cd.cost(b), cd.damage(v), true)])
            }
            gate => {
                let mut kids = tree.children(v).iter();
                let first = kids.next().expect("gates have children");
                let mut acc = fronts[first.index()].take().expect("child computed");
                for c in kids {
                    let cf = fronts[c.index()].take().expect("child computed");
                    let mut combined = Vec::with_capacity(acc.len() * cf.len());
                    for &(c1, d1, a1) in &acc {
                        for &(c2, d2, a2) in &cf {
                            let a = match gate {
                                NodeType::Or => a1 || a2,
                                NodeType::And => a1 && a2,
                                NodeType::Bas => unreachable!(),
                            };
                            combined.push((c1 + c2, d1 + d2, a));
                        }
                    }
                    acc = prune_2d(combined);
                }
                let dv = cd.damage(v);
                prune_2d(
                    acc.into_iter().map(|(c, d, a)| (c, if a { d + dv } else { d }, a)).collect(),
                )
            }
        };
        fronts[v.index()] = Some(front);
    }
    let root = fronts[tree.root().index()].take().expect("root computed");
    Ok(ParetoFront::from_points(root.into_iter().map(|(c, d, _)| CostDamage::new(c, d))))
}

/// 2-D Pareto minimization that deliberately ignores the activation flag.
fn prune_2d(mut pairs: Vec<(f64, f64, bool)>) -> Vec<(f64, f64, bool)> {
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("no NaN")
            .then(b.1.partial_cmp(&a.1).expect("no NaN"))
            .then(b.2.cmp(&a.2))
    });
    let mut kept: Vec<(f64, f64, bool)> = Vec::new();
    for p in pairs {
        match kept.last() {
            Some(&(_, d, _)) if d >= p.1 => continue,
            _ => kept.push(p),
        }
    }
    kept
}

/// The fully enumerative CDPF (all `2^|B|` attacks), used by benches as the
/// "no bottom-up at all" extreme of the ablation. Identical to the baseline
/// in `cdat-enumerative`, duplicated here in minimal form to keep the
/// ablation module self-contained.
///
/// # Panics
///
/// Panics if the tree has more than 25 BASs.
pub fn cdpf_enumerative_reference(cd: &CdAttackTree) -> ParetoFront {
    let n = cd.tree().bas_count();
    assert!(n <= 25, "reference enumeration is exponential; refusing |B| > 25");
    ParetoFront::from_points(
        Attack::all(n).map(|x| CostDamage::new(cd.cost_of(&x), cd.damage_of(&x))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdpf;
    use cdat_core::AttackTreeBuilder;

    fn factory_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("ca", 1.0)
            .unwrap()
            .cost("pb", 3.0)
            .unwrap()
            .cost("fd", 2.0)
            .unwrap()
            .damage("fd", 10.0)
            .unwrap()
            .damage("dr", 100.0)
            .unwrap()
            .damage("ps", 200.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn two_dimensional_pruning_loses_example_4_attack() {
        // Without the activation dimension, {pb} = (3, 0) is pruned at pb
        // (dominated by (0,0)), so the optimal attack (5, 310) = {pb, fd} is
        // never discovered.
        let cd = factory_cd();
        let sound = cdpf(&cd).unwrap();
        let unsound = cdpf_without_activation_dimension(&cd).unwrap();
        assert!(sound.points().any(|p| p == CostDamage::new(5.0, 310.0)));
        assert!(
            !unsound.points().any(|p| p == CostDamage::new(5.0, 310.0)),
            "the 2-D ablation should miss the (5,310) attack; got {unsound}"
        );
    }

    #[test]
    fn enumerative_reference_agrees_with_bottom_up() {
        let cd = factory_cd();
        assert!(cdpf(&cd).unwrap().approx_eq(&cdpf_enumerative_reference(&cd), 1e-12));
    }
}
