//! Ablation variants that demonstrate *why* the main algorithm is shaped the
//! way it is.
//!
//! These are **not** part of the supported analysis API. They exist so the
//! benchmark suite (and curious readers) can measure and observe the design
//! decisions called out in DESIGN.md. Three families live here:
//!
//! * the **sort-based oracle** (`*_sorted_oracle_*`): the pre-kernel gate
//!   evaluation that materializes every gate's Cartesian product and
//!   re-sorts, kept as the differential reference for the merge-based
//!   staircase kernels (and as the baseline the `kernel_combine` bench
//!   measures the kernels against);
//! * the unsound **two-dimensional** bottom-up, which drops the activation
//!   coordinate (the paper's Example 4 failure);
//! * the fully **enumerative** reference.

use cdat_core::{Attack, AttackTree, CdAttackTree, CdpAttackTree, NodeType, NotTreelike};
use cdat_pareto::{prune, Activation, CostDamage, FrontEntry, ParetoFront, Prob, Triple};

use crate::recursion::{self, Entry};
use crate::solver::{det_leaf, prob_leaf};

/// The pre-kernel gate evaluation, retained verbatim as a **differential
/// oracle** for the merge-based staircase kernels: it materializes the full
/// `|acc|·|child|` Cartesian product at every gate (witness unions included,
/// even for pairs that are then discarded) and re-establishes the staircase
/// invariant from scratch with [`prune`]'s comparison sort.
///
/// The kernels are constructed to be point-for-point identical to this path
/// — including which witness wins on duplicate triples — which the seeded
/// differential tests in `tests/kernel_differential.rs` exercise end-to-end.
fn node_fronts_sorted<A, F>(
    tree: &AttackTree,
    damages: &[f64],
    leaf: F,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Vec<Entry<A>>>, NotTreelike>
where
    A: Activation,
    F: Fn(cdat_core::BasId) -> Triple<A>,
{
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    assert_eq!(damages.len(), tree.node_count(), "damage table must be indexed by node id");
    let n_bas = tree.bas_count();
    let mut fronts: Vec<Vec<Entry<A>>> = Vec::with_capacity(tree.node_count());
    for v in tree.node_ids() {
        let front = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has a BAS id");
                let mut entries: Vec<Entry<A>> =
                    vec![(Triple::zero(), witnesses.then(|| Attack::empty(n_bas)))];
                let active = leaf(b);
                if budget.is_none_or(|u| active.cost <= u) {
                    entries.push((active, witnesses.then(|| Attack::from_bas_ids(n_bas, [b]))));
                }
                prune(entries, budget)
            }
            gate @ (NodeType::Or | NodeType::And) => {
                let mut kids = tree.children(v).iter();
                let first = kids.next().expect("gates have at least one child");
                let mut acc = fronts[first.index()].clone();
                for c in kids {
                    let cf = &fronts[c.index()];
                    let mut combined: Vec<Entry<A>> = Vec::with_capacity(acc.len() * cf.len());
                    for (t1, w1) in &acc {
                        for (t2, w2) in cf {
                            let t = match gate {
                                NodeType::Or => t1.combine_or(t2),
                                NodeType::And => t1.combine_and(t2),
                                NodeType::Bas => unreachable!(),
                            };
                            if budget.is_some_and(|u| t.cost > u) {
                                continue;
                            }
                            let w = match (w1, w2) {
                                (Some(a), Some(b)) => Some(a.union(b)),
                                _ => None,
                            };
                            combined.push((t, w));
                        }
                    }
                    acc = prune(combined, budget);
                }
                let dv = damages[v.index()];
                let settled: Vec<Entry<A>> =
                    acc.into_iter().map(|(t, w)| (t.settle(dv), w)).collect();
                prune(settled, budget)
            }
        };
        fronts.push(front);
    }
    Ok(fronts)
}

/// The root-front flavor of the sort-based oracle: identical gate math to
/// [`node_fronts_sorted`], but child fronts are *consumed* (`take`, no
/// clone of the first child) exactly like the pre-kernel `root_front` it
/// preserves — so benchmarking the kernels against this path measures the
/// combine step, not an artificial cloning handicap.
fn root_front_sorted<A, F>(
    tree: &AttackTree,
    damages: &[f64],
    leaf: F,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<A>>, NotTreelike>
where
    A: Activation,
    F: Fn(cdat_core::BasId) -> Triple<A>,
{
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    assert_eq!(damages.len(), tree.node_count(), "damage table must be indexed by node id");
    let n_bas = tree.bas_count();
    let mut fronts: Vec<Option<Vec<Entry<A>>>> = vec![None; tree.node_count()];
    for v in tree.node_ids() {
        let front = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has a BAS id");
                let mut entries: Vec<Entry<A>> =
                    vec![(Triple::zero(), witnesses.then(|| Attack::empty(n_bas)))];
                let active = leaf(b);
                if budget.is_none_or(|u| active.cost <= u) {
                    entries.push((active, witnesses.then(|| Attack::from_bas_ids(n_bas, [b]))));
                }
                prune(entries, budget)
            }
            gate @ (NodeType::Or | NodeType::And) => {
                let mut kids = tree.children(v).iter();
                let first = kids.next().expect("gates have at least one child");
                let mut acc = fronts[first.index()].take().expect("children precede parents");
                for c in kids {
                    let cf = fronts[c.index()].take().expect("children precede parents");
                    let mut combined: Vec<Entry<A>> = Vec::with_capacity(acc.len() * cf.len());
                    for (t1, w1) in &acc {
                        for (t2, w2) in &cf {
                            let t = match gate {
                                NodeType::Or => t1.combine_or(t2),
                                NodeType::And => t1.combine_and(t2),
                                NodeType::Bas => unreachable!(),
                            };
                            if budget.is_some_and(|u| t.cost > u) {
                                continue;
                            }
                            let w = match (w1, w2) {
                                (Some(a), Some(b)) => Some(a.union(b)),
                                _ => None,
                            };
                            combined.push((t, w));
                        }
                    }
                    acc = prune(combined, budget);
                }
                let dv = damages[v.index()];
                let settled: Vec<Entry<A>> =
                    acc.into_iter().map(|(t, w)| (t.settle(dv), w)).collect();
                prune(settled, budget)
            }
        };
        fronts[v.index()] = Some(front);
    }
    Ok(fronts[tree.root().index()].take().expect("root front computed"))
}

/// Per-node deterministic fronts via the sort-based oracle (the pre-kernel
/// bottom-up), for differential comparison against
/// [`BottomUp::node_fronts`](crate::BottomUp::node_fronts).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn node_entries_sorted_oracle_det(
    cd: &CdAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Vec<Entry<bool>>>, NotTreelike> {
    node_fronts_sorted(cd.tree(), cd.damages(), det_leaf(cd), budget, witnesses)
}

/// Per-node probabilistic fronts via the sort-based oracle.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn node_entries_sorted_oracle_prob(
    cdp: &CdpAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Vec<Entry<Prob>>>, NotTreelike> {
    node_fronts_sorted(cdp.tree(), cdp.cd().damages(), prob_leaf(cdp), budget, witnesses)
}

/// Deterministic root entries via the sort-based oracle.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn root_entries_sorted_oracle_det(
    cd: &CdAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<bool>>, NotTreelike> {
    root_front_sorted(cd.tree(), cd.damages(), det_leaf(cd), budget, witnesses)
}

/// Probabilistic root entries via the sort-based oracle.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn root_entries_sorted_oracle_prob(
    cdp: &CdpAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<Prob>>, NotTreelike> {
    root_front_sorted(cdp.tree(), cdp.cd().damages(), prob_leaf(cdp), budget, witnesses)
}

/// Deterministic root entries via the production merge kernels — the exact
/// counterpart of [`root_entries_sorted_oracle_det`], exposed so tests and
/// benches can diff the two paths entry-for-entry (witnesses included).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn root_entries_kernel_det(
    cd: &CdAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<bool>>, NotTreelike> {
    recursion::root_front(cd.tree(), cd.damages(), det_leaf(cd), budget, witnesses)
}

/// Probabilistic root entries via the production merge kernels.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn root_entries_kernel_prob(
    cdp: &CdpAttackTree,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<Prob>>, NotTreelike> {
    recursion::root_front(cdp.tree(), cdp.cd().damages(), prob_leaf(cdp), budget, witnesses)
}

/// CDPF through the sort-based oracle: the projected root front of
/// [`root_entries_sorted_oracle_det`], for benchmarking the merge kernels
/// against the path they replaced.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cdpf_sorted_oracle(cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
    let front = root_entries_sorted_oracle_det(cd, None, true)?;
    Ok(ParetoFront::from_entries(
        front.into_iter().map(|(t, w)| FrontEntry { point: t.project(), witness: w }),
    ))
}

/// CEDPF through the sort-based oracle.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cedpf_sorted_oracle(cdp: &CdpAttackTree) -> Result<ParetoFront, NotTreelike> {
    let front = root_entries_sorted_oracle_prob(cdp, None, true)?;
    Ok(ParetoFront::from_entries(
        front.into_iter().map(|(t, w)| FrontEntry { point: t.project(), witness: w }),
    ))
}

/// The naive two-dimensional bottom-up: propagate `(cost, damage)` pairs only
/// and Pareto-prune them at every node, **without** the activation
/// coordinate.
///
/// This is the natural-but-wrong generalization of prior Pareto work to
/// cost-damage analysis; the paper's Example 4 shows it loses optimal
/// attacks (it discards a child attack that pays for activation before the
/// payoff at an ancestor is visible). It is exposed so tests and benches can
/// demonstrate the failure: on the factory example it reports a front that
/// misses `(5, 310)`.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cdpf_without_activation_dimension(cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
    let tree = cd.tree();
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    // Pairs (cost, damage-if-this-subtree-alone, reached) — but pruning
    // ignores `reached`, which is the deliberate mistake under study.
    type Pair = (f64, f64, bool);
    let mut fronts: Vec<Option<Vec<Pair>>> = vec![None; tree.node_count()];
    for v in tree.node_ids() {
        let front: Vec<Pair> = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has BAS id");
                prune_2d(vec![(0.0, 0.0, false), (cd.cost(b), cd.damage(v), true)])
            }
            gate => {
                let mut kids = tree.children(v).iter();
                let first = kids.next().expect("gates have children");
                let mut acc = fronts[first.index()].take().expect("child computed");
                for c in kids {
                    let cf = fronts[c.index()].take().expect("child computed");
                    let mut combined = Vec::with_capacity(acc.len() * cf.len());
                    for &(c1, d1, a1) in &acc {
                        for &(c2, d2, a2) in &cf {
                            let a = match gate {
                                NodeType::Or => a1 || a2,
                                NodeType::And => a1 && a2,
                                NodeType::Bas => unreachable!(),
                            };
                            combined.push((c1 + c2, d1 + d2, a));
                        }
                    }
                    acc = prune_2d(combined);
                }
                let dv = cd.damage(v);
                prune_2d(
                    acc.into_iter().map(|(c, d, a)| (c, if a { d + dv } else { d }, a)).collect(),
                )
            }
        };
        fronts[v.index()] = Some(front);
    }
    let root = fronts[tree.root().index()].take().expect("root computed");
    Ok(ParetoFront::from_points(root.into_iter().map(|(c, d, _)| CostDamage::new(c, d))))
}

/// 2-D Pareto minimization that deliberately ignores the activation flag.
fn prune_2d(mut pairs: Vec<(f64, f64, bool)>) -> Vec<(f64, f64, bool)> {
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)).then(b.2.cmp(&a.2)));
    let mut kept: Vec<(f64, f64, bool)> = Vec::new();
    for p in pairs {
        match kept.last() {
            Some(&(_, d, _)) if d >= p.1 => continue,
            _ => kept.push(p),
        }
    }
    kept
}

/// The fully enumerative CDPF (all `2^|B|` attacks), used by benches as the
/// "no bottom-up at all" extreme of the ablation. Identical to the baseline
/// in `cdat-enumerative`, duplicated here in minimal form to keep the
/// ablation module self-contained.
///
/// # Panics
///
/// Panics if the tree has more than 25 BASs.
pub fn cdpf_enumerative_reference(cd: &CdAttackTree) -> ParetoFront {
    let n = cd.tree().bas_count();
    assert!(n <= 25, "reference enumeration is exponential; refusing |B| > 25");
    ParetoFront::from_points(
        Attack::all(n).map(|x| CostDamage::new(cd.cost_of(&x), cd.damage_of(&x))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdpf;
    use cdat_core::AttackTreeBuilder;

    fn factory_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("ca", 1.0)
            .unwrap()
            .cost("pb", 3.0)
            .unwrap()
            .cost("fd", 2.0)
            .unwrap()
            .damage("fd", 10.0)
            .unwrap()
            .damage("dr", 100.0)
            .unwrap()
            .damage("ps", 200.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn two_dimensional_pruning_loses_example_4_attack() {
        // Without the activation dimension, {pb} = (3, 0) is pruned at pb
        // (dominated by (0,0)), so the optimal attack (5, 310) = {pb, fd} is
        // never discovered.
        let cd = factory_cd();
        let sound = cdpf(&cd).unwrap();
        let unsound = cdpf_without_activation_dimension(&cd).unwrap();
        assert!(sound.points().any(|p| p == CostDamage::new(5.0, 310.0)));
        assert!(
            !unsound.points().any(|p| p == CostDamage::new(5.0, 310.0)),
            "the 2-D ablation should miss the (5,310) attack; got {unsound}"
        );
    }

    #[test]
    fn enumerative_reference_agrees_with_bottom_up() {
        let cd = factory_cd();
        assert!(cdpf(&cd).unwrap().approx_eq(&cdpf_enumerative_reference(&cd), 1e-12));
    }

    #[test]
    fn sorted_oracle_matches_the_kernels_on_the_factory() {
        let cd = factory_cd();
        for budget in [None, Some(0.0), Some(2.5), Some(5.0), Some(-1.0)] {
            for witnesses in [true, false] {
                let kernel = root_entries_kernel_det(&cd, budget, witnesses).unwrap();
                let oracle = root_entries_sorted_oracle_det(&cd, budget, witnesses).unwrap();
                assert_eq!(kernel, oracle, "budget {budget:?}, witnesses {witnesses}");
            }
        }
        assert_eq!(cdpf_sorted_oracle(&cd).unwrap(), cdpf(&cd).unwrap());
    }

    #[test]
    fn sorted_oracle_rejects_dags() {
        let mut b = cdat_core::AttackTreeBuilder::new();
        let x = b.bas("x");
        let g1 = b.or("g1", [x]);
        let g2 = b.or("g2", [x]);
        let _r = b.and("r", [g1, g2]);
        let cd = CdAttackTree::builder(b.build().unwrap()).finish().unwrap();
        assert_eq!(root_entries_sorted_oracle_det(&cd, None, true).unwrap_err(), NotTreelike);
        assert_eq!(cdpf_sorted_oracle(&cd).unwrap_err(), NotTreelike);
    }
}
