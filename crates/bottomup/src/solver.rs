//! Public solver API: CDPF/DgC/CgD and their probabilistic counterparts.

use cdat_core::{Attack, CdAttackTree, CdpAttackTree, NotTreelike};
use cdat_pareto::{FrontEntry, MaxProb, MinTime, ParetoFront, Prob, Triple};

use crate::recursion::{generic_root_front, node_fronts, root_front, Entry};

/// Per-node deterministic fronts, indexed by `NodeId::index()`.
pub type NodeFronts = Vec<Vec<(Triple<bool>, Option<Attack>)>>;
/// Per-node probabilistic fronts, indexed by `NodeId::index()`.
pub type NodeFrontsProbabilistic = Vec<Vec<(Triple<Prob>, Option<Attack>)>>;

/// Configurable bottom-up solver for treelike attack trees.
///
/// The free functions [`cdpf`], [`dgc`], … use the default configuration;
/// construct a `BottomUp` to disable witness tracking (slightly faster, no
/// attack sets in the output) or budget pruning (for ablation studies — the
/// answer is unchanged, only slower to compute).
///
/// # Example
///
/// ```
/// use cdat_bottomup::BottomUp;
/// use cdat_core::{AttackTreeBuilder, CdAttackTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = AttackTreeBuilder::new();
/// let x = b.bas("x");
/// let y = b.bas("y");
/// let _r = b.or("r", [x, y]);
/// let cd = CdAttackTree::builder(b.build()?)
///     .cost("x", 1.0)?.cost("y", 2.0)?.damage("r", 10.0)?
///     .finish()?;
/// let front = BottomUp::new().without_witnesses().cdpf(&cd)?;
/// assert_eq!(front.len(), 2); // (0,0) and (1,10)
/// # Ok(()) }
/// ```
#[derive(Clone, Debug)]
pub struct BottomUp {
    witnesses: bool,
    budget_pruning: bool,
}

impl Default for BottomUp {
    fn default() -> Self {
        Self::new()
    }
}

impl BottomUp {
    /// Default solver: tracks witnesses and prunes with the cost budget.
    pub fn new() -> Self {
        BottomUp { witnesses: true, budget_pruning: true }
    }

    /// Disables witness tracking; front entries will have `witness: None`.
    pub fn without_witnesses(mut self) -> Self {
        self.witnesses = false;
        self
    }

    /// Disables in-recursion cost pruning for the budgeted problems (DgC,
    /// EDgC). Results are identical; this exists to measure how much the
    /// `min_U` pruning buys (ablation).
    pub fn without_budget_pruning(mut self) -> Self {
        self.budget_pruning = false;
        self
    }

    fn det_front(
        &self,
        cd: &CdAttackTree,
        budget: Option<f64>,
    ) -> Result<Vec<Entry<bool>>, NotTreelike> {
        let budget = if self.budget_pruning { budget } else { None };
        root_front::<bool, _>(cd.tree(), cd.damages(), det_leaf(cd), budget, self.witnesses)
    }

    fn prob_front(
        &self,
        cdp: &CdpAttackTree,
        budget: Option<f64>,
    ) -> Result<Vec<Entry<Prob>>, NotTreelike> {
        let budget = if self.budget_pruning { budget } else { None };
        root_front::<Prob, _>(
            cdp.tree(),
            cdp.cd().damages(),
            prob_leaf(cdp),
            budget,
            self.witnesses,
        )
    }

    /// Cost-damage Pareto front of a treelike cd-AT (Theorem 4).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees; use `cdat-bilp` there.
    pub fn cdpf(&self, cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
        let front = self.det_front(cd, None)?;
        Ok(project(front))
    }

    /// Maximal damage within a cost budget (DgC, Theorem 3), with the
    /// cheapest witnessing entry. `None` only when the budget is negative
    /// (even the empty attack is too expensive).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn dgc(&self, cd: &CdAttackTree, budget: f64) -> Result<Option<FrontEntry>, NotTreelike> {
        let front = self.det_front(cd, Some(budget))?;
        Ok(best_within(project(front), budget))
    }

    /// Minimal cost achieving a damage threshold (CgD), with a witnessing
    /// entry. `None` when the threshold exceeds the maximal damage.
    ///
    /// As the paper notes, CgD cannot prune by cost mid-recursion (an attack
    /// below the damage goal at `v` may reach it higher up), so this always
    /// computes the full front first.
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn cgd(
        &self,
        cd: &CdAttackTree,
        threshold: f64,
    ) -> Result<Option<FrontEntry>, NotTreelike> {
        let front = self.cdpf(cd)?;
        Ok(front.min_cost_achieving(threshold).cloned())
    }

    /// Cost–expected-damage Pareto front of a treelike cdp-AT (Theorem 9).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees — the tree recursion
    /// would double-count shared subtrees; `cdat-bdd::fuse` solves those
    /// exactly, and `cdat-enumerative` offers an exponential oracle.
    pub fn cedpf(&self, cdp: &CdpAttackTree) -> Result<ParetoFront, NotTreelike> {
        let front = self.prob_front(cdp, None)?;
        Ok(project(front))
    }

    /// Maximal expected damage within a cost budget (EDgC, Theorem 8).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn edgc(
        &self,
        cdp: &CdpAttackTree,
        budget: f64,
    ) -> Result<Option<FrontEntry>, NotTreelike> {
        let front = self.prob_front(cdp, Some(budget))?;
        Ok(best_within(project(front), budget))
    }

    /// Minimal cost achieving an expected-damage threshold (CgED).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn cged(
        &self,
        cdp: &CdpAttackTree,
        threshold: f64,
    ) -> Result<Option<FrontEntry>, NotTreelike> {
        let front = self.cedpf(cdp)?;
        Ok(front.min_cost_achieving(threshold).cloned())
    }

    /// Minimal time-to-attack of a treelike cd-AT: the least total duration
    /// of a successful attack, reading each BAS's cost attribute as its
    /// duration (`AND` sums, `OR` takes the faster child).
    ///
    /// The scalar optimum is returned as a one-entry [`ParetoFront`] with
    /// the duration in the cost slot (damage 0), so it rides the same
    /// cache, wire and rendering paths as the front-valued queries.
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees (shared BASs would be
    /// double-counted; `cdat-enumerative` offers an exact fallback).
    pub fn min_time(&self, cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
        let front = generic_root_front::<MinTime, _>(cd.tree(), |b| cd.cost(b), self.witnesses)?;
        Ok(scalar_front(front))
    }

    /// Maximal success probability of a treelike cdp-AT: the likeliest
    /// *single* attack, multiplying BAS success probabilities (`AND`
    /// multiplies, `OR` takes the likelier child) — the Viterbi semiring,
    /// unlike `cedpf`'s `p ⋆ q` which lets the attacker try both branches.
    ///
    /// The scalar optimum is returned as a one-entry [`ParetoFront`] with
    /// the probability in the cost slot (damage 0).
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn max_prob(&self, cdp: &CdpAttackTree) -> Result<ParetoFront, NotTreelike> {
        let front = generic_root_front::<MaxProb, _>(cdp.tree(), |b| cdp.prob(b), self.witnesses)?;
        Ok(scalar_front(front))
    }

    /// The per-node deterministic fronts `C_U(v)` (the sets the paper prints
    /// in Example 5), indexed by `NodeId::index()`. Each entry is a
    /// `(cost, damage, reached)` triple with an optional witness.
    ///
    /// `budget` is the `U` of `min_U`; pass `None` for `U = ∞`.
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn node_fronts(
        &self,
        cd: &CdAttackTree,
        budget: Option<f64>,
    ) -> Result<NodeFronts, NotTreelike> {
        let budget = if self.budget_pruning { budget } else { None };
        node_fronts::<bool, _>(cd.tree(), cd.damages(), det_leaf(cd), budget, self.witnesses)
    }

    /// The per-node probabilistic fronts `C_U(v)` with
    /// `(cost, expected damage, reach probability)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`NotTreelike`] for DAG-like trees.
    pub fn node_fronts_probabilistic(
        &self,
        cdp: &CdpAttackTree,
        budget: Option<f64>,
    ) -> Result<NodeFrontsProbabilistic, NotTreelike> {
        let budget = if self.budget_pruning { budget } else { None };
        node_fronts::<Prob, _>(
            cdp.tree(),
            cdp.cd().damages(),
            prob_leaf(cdp),
            budget,
            self.witnesses,
        )
    }
}

/// The activating leaf triple of a deterministic cd-AT, shared by the solver
/// and the differential oracle in [`crate::ablation`].
pub(crate) fn det_leaf(cd: &CdAttackTree) -> impl Fn(cdat_core::BasId) -> Triple<bool> + '_ {
    |b| Triple { cost: cd.cost(b), damage: cd.damage(cd.tree().node_of_bas(b)), act: true }
}

/// The activating leaf triple of a probabilistic cdp-AT.
pub(crate) fn prob_leaf(cdp: &CdpAttackTree) -> impl Fn(cdat_core::BasId) -> Triple<Prob> + '_ {
    |b| {
        let p = cdp.prob(b);
        Triple {
            cost: cdp.cd().cost(b),
            damage: p * cdp.cd().damage(cdp.tree().node_of_bas(b)),
            act: Prob::new(p),
        }
    }
}

/// Projects root triples to the cost-damage plane and minimizes (the map `π`
/// followed by `min` — Theorems 4 and 9).
pub(crate) fn project<A: cdat_pareto::Activation>(front: Vec<Entry<A>>) -> ParetoFront {
    ParetoFront::from_entries(
        front.into_iter().map(|(t, w)| FrontEntry { point: t.project(), witness: w }),
    )
}

fn best_within(front: ParetoFront, budget: f64) -> Option<FrontEntry> {
    front.max_damage_within(budget).cloned()
}

/// Wraps a scalar-domain root front (a singleton) as a one-entry
/// [`ParetoFront`] with the value in the cost slot.
fn scalar_front(front: Vec<(f64, Option<Attack>)>) -> ParetoFront {
    ParetoFront::from_entries(
        front
            .into_iter()
            .map(|(v, w)| FrontEntry { point: cdat_pareto::CostDamage::new(v, 0.0), witness: w }),
    )
}

/// Cost-damage Pareto front of a treelike cd-AT (Theorem 4).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees; use `cdat-bilp` there.
pub fn cdpf(cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
    BottomUp::new().cdpf(cd)
}

/// Maximal damage within a cost budget (DgC, Theorem 3).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn dgc(cd: &CdAttackTree, budget: f64) -> Result<Option<FrontEntry>, NotTreelike> {
    BottomUp::new().dgc(cd, budget)
}

/// Minimal cost achieving a damage threshold (CgD).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cgd(cd: &CdAttackTree, threshold: f64) -> Result<Option<FrontEntry>, NotTreelike> {
    BottomUp::new().cgd(cd, threshold)
}

/// Cost–expected-damage Pareto front of a treelike cdp-AT (Theorem 9).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cedpf(cdp: &CdpAttackTree) -> Result<ParetoFront, NotTreelike> {
    BottomUp::new().cedpf(cdp)
}

/// Maximal expected damage within a cost budget (EDgC, Theorem 8).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn edgc(cdp: &CdpAttackTree, budget: f64) -> Result<Option<FrontEntry>, NotTreelike> {
    BottomUp::new().edgc(cdp, budget)
}

/// Minimal cost achieving an expected-damage threshold (CgED).
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn cged(cdp: &CdpAttackTree, threshold: f64) -> Result<Option<FrontEntry>, NotTreelike> {
    BottomUp::new().cged(cdp, threshold)
}

/// Minimal time-to-attack (min-plus over `AND`/`OR`), as a one-entry front.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn min_time(cd: &CdAttackTree) -> Result<ParetoFront, NotTreelike> {
    BottomUp::new().min_time(cd)
}

/// Maximal single-attack success probability, as a one-entry front.
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn max_prob(cdp: &CdpAttackTree) -> Result<ParetoFront, NotTreelike> {
    BottomUp::new().max_prob(cdp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::{Attack, AttackTreeBuilder};
    use cdat_pareto::CostDamage;

    fn factory_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("ca", 1.0)
            .unwrap()
            .cost("pb", 3.0)
            .unwrap()
            .cost("fd", 2.0)
            .unwrap()
            .damage("fd", 10.0)
            .unwrap()
            .damage("dr", 100.0)
            .unwrap()
            .damage("ps", 200.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    fn factory_cdp() -> CdpAttackTree {
        factory_cd()
            .with_probabilities()
            .probability("ca", 0.2)
            .unwrap()
            .probability("pb", 0.4)
            .unwrap()
            .probability("fd", 0.9)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn factory_cdpf_matches_equation_3() {
        let front = cdpf(&factory_cd()).unwrap();
        let expect = [(0.0, 0.0), (1.0, 200.0), (3.0, 210.0), (5.0, 310.0)];
        assert_eq!(front.len(), 4);
        for (e, (c, d)) in front.entries().iter().zip(expect) {
            assert_eq!(e.point, CostDamage::new(c, d));
        }
    }

    #[test]
    fn factory_witnesses_are_the_pareto_optimal_attacks() {
        let cd = factory_cd();
        let front = cdpf(&cd).unwrap();
        let names: Vec<Vec<String>> = front
            .entries()
            .iter()
            .map(|e| {
                e.witness
                    .as_ref()
                    .unwrap()
                    .iter()
                    .map(|b| cd.tree().name(cd.tree().node_of_bas(b)).to_owned())
                    .collect()
            })
            .collect();
        // Fig. 3 of the paper: the filled (Pareto-optimal) attacks are
        // ∅, {ca}, {ca, fd} and {pb, fd}.
        assert_eq!(
            names,
            vec![
                Vec::<String>::new(),
                vec!["ca".to_owned()],
                vec!["ca".to_owned(), "fd".to_owned()],
                vec!["pb".to_owned(), "fd".to_owned()],
            ]
        );
        // Each witness reproduces its point exactly.
        for e in front.entries() {
            let w = e.witness.as_ref().unwrap();
            assert_eq!(cd.cost_of(w), e.point.cost);
            assert_eq!(cd.damage_of(w), e.point.damage);
        }
    }

    #[test]
    fn factory_dgc_matches_example_2() {
        let cd = factory_cd();
        assert_eq!(dgc(&cd, 2.0).unwrap().unwrap().point.damage, 200.0);
        assert_eq!(dgc(&cd, 0.0).unwrap().unwrap().point.damage, 0.0);
        assert_eq!(dgc(&cd, 5.0).unwrap().unwrap().point.damage, 310.0);
        assert_eq!(dgc(&cd, 4.0).unwrap().unwrap().point.damage, 210.0);
        assert!(dgc(&cd, -1.0).unwrap().is_none());
    }

    #[test]
    fn factory_cgd() {
        let cd = factory_cd();
        assert_eq!(cgd(&cd, 1.0).unwrap().unwrap().point.cost, 1.0);
        assert_eq!(cgd(&cd, 200.5).unwrap().unwrap().point.cost, 3.0);
        assert_eq!(cgd(&cd, 310.0).unwrap().unwrap().point.cost, 5.0);
        assert!(cgd(&cd, 310.5).unwrap().is_none());
    }

    #[test]
    fn example_10_probabilistic_front() {
        // OR of two BASs (c=1, d=0, p=0.5) with root damage 1:
        // CEDPF = {(0,0), (1,0.5), (2,0.75)}.
        let mut b = AttackTreeBuilder::new();
        let v1 = b.bas("v1");
        let v2 = b.bas("v2");
        let _w = b.or("w", [v1, v2]);
        let cdp = CdAttackTree::builder(b.build().unwrap())
            .cost("v1", 1.0)
            .unwrap()
            .cost("v2", 1.0)
            .unwrap()
            .damage("w", 1.0)
            .unwrap()
            .finish()
            .unwrap()
            .with_probabilities()
            .probability("v1", 0.5)
            .unwrap()
            .probability("v2", 0.5)
            .unwrap()
            .finish()
            .unwrap();
        let front = cedpf(&cdp).unwrap();
        assert_eq!(front.len(), 3);
        let pts: Vec<(f64, f64)> = front.points().map(|p| (p.cost, p.damage)).collect();
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[1], (1.0, 0.5));
        assert_eq!(pts[2], (2.0, 0.75));
        // The deterministic front of the same tree has only 2 points: adding
        // the second BAS is useless when success is certain.
        let det = cdpf(cdp.cd()).unwrap();
        assert_eq!(det.len(), 2);
    }

    #[test]
    fn factory_cedpf_matches_brute_force() {
        let cdp = factory_cdp();
        let front = cedpf(&cdp).unwrap();
        // Brute force over all 8 attacks.
        let brute = ParetoFront::from_points(
            Attack::all(3)
                .map(|x| CostDamage::new(cdp.cost_of(&x), cdp.expected_damage(&x).unwrap())),
        );
        assert!(front.approx_eq(&brute, 1e-9), "bottom-up {front} vs brute {brute}");
        // Witnesses reproduce their points.
        for e in front.entries() {
            let w = e.witness.as_ref().unwrap();
            assert!((cdp.expected_damage(w).unwrap() - e.point.damage).abs() < 1e-9);
        }
    }

    #[test]
    fn edgc_and_cged_agree_with_the_front() {
        let cdp = factory_cdp();
        let front = cedpf(&cdp).unwrap();
        for budget in [0.0, 1.0, 2.0, 3.0, 4.5, 6.0] {
            let direct = edgc(&cdp, budget).unwrap().unwrap();
            let via_front = front.max_damage_within(budget).unwrap();
            assert!((direct.point.damage - via_front.point.damage).abs() < 1e-12);
        }
        for threshold in [0.0, 10.0, 50.0, 100.0] {
            let direct = cged(&cdp, threshold).unwrap();
            let via_front = front.min_cost_achieving(threshold);
            assert_eq!(direct.map(|e| e.point.cost), via_front.map(|e| e.point.cost));
        }
    }

    #[test]
    fn budget_pruning_does_not_change_answers() {
        let cd = factory_cd();
        let pruned = BottomUp::new();
        let unpruned = BottomUp::new().without_budget_pruning();
        for budget in [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 100.0] {
            let a = pruned.dgc(&cd, budget).unwrap().map(|e| e.point);
            let b = unpruned.dgc(&cd, budget).unwrap().map(|e| e.point);
            assert_eq!(a, b, "budget {budget}");
        }
    }

    #[test]
    fn without_witnesses_produces_same_points() {
        let cd = factory_cd();
        let with = cdpf(&cd).unwrap();
        let without = BottomUp::new().without_witnesses().cdpf(&cd).unwrap();
        assert!(with.approx_eq(&without, 0.0));
        assert!(without.entries().iter().all(|e| e.witness.is_none()));
    }

    #[test]
    fn single_bas_tree() {
        let mut b = AttackTreeBuilder::new();
        b.bas("only");
        let cd = CdAttackTree::builder(b.build().unwrap())
            .cost("only", 4.0)
            .unwrap()
            .damage("only", 9.0)
            .unwrap()
            .finish()
            .unwrap();
        let front = cdpf(&cd).unwrap();
        assert_eq!(front.to_string(), "{(0, 0), (4, 9)}");
        assert_eq!(dgc(&cd, 3.9).unwrap().unwrap().point.damage, 0.0);
        assert_eq!(dgc(&cd, 4.0).unwrap().unwrap().point.damage, 9.0);
    }

    #[test]
    fn node_fronts_reproduce_examples_3_4_and_5() {
        let cd = factory_cd();
        let fronts = BottomUp::new().node_fronts(&cd, None).unwrap();
        let at = |name: &str| {
            let v = cd.tree().find(name).unwrap();
            let mut set: Vec<(f64, f64, bool)> =
                fronts[v.index()].iter().map(|(t, _)| (t.cost, t.damage, t.act)).collect();
            set.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
            set
        };
        // Example 3: the BAS fronts.
        assert_eq!(at("pb"), vec![(0.0, 0.0, false), (3.0, 0.0, true)]);
        assert_eq!(at("fd"), vec![(0.0, 0.0, false), (2.0, 10.0, true)]);
        // Example 4: at dr, (3,0,0) is discarded but (5,110,1) is kept.
        assert_eq!(at("dr"), vec![(0.0, 0.0, false), (2.0, 10.0, false), (5.0, 110.0, true)]);
        // Example 5: the root front (see the recursion test for the full
        // domination discussion).
        assert_eq!(
            at("ps"),
            vec![(0.0, 0.0, false), (1.0, 200.0, true), (3.0, 210.0, true), (5.0, 310.0, true),]
        );
    }

    #[test]
    fn probabilistic_node_fronts_reproduce_example_10() {
        // Example 10's table: at the root w, PTrip keeps three triples where
        // DTrip keeps two.
        let mut b = AttackTreeBuilder::new();
        let v1 = b.bas("v1");
        let v2 = b.bas("v2");
        let _w = b.or("w", [v1, v2]);
        let cdp = CdAttackTree::builder(b.build().unwrap())
            .cost("v1", 1.0)
            .unwrap()
            .cost("v2", 1.0)
            .unwrap()
            .damage("w", 1.0)
            .unwrap()
            .finish()
            .unwrap()
            .with_probabilities()
            .probability("v1", 0.5)
            .unwrap()
            .probability("v2", 0.5)
            .unwrap()
            .finish()
            .unwrap();
        let solver = BottomUp::new();
        let det = solver.node_fronts(cdp.cd(), None).unwrap();
        let prob = solver.node_fronts_probabilistic(&cdp, None).unwrap();
        let root = cdp.tree().root().index();
        assert_eq!(det[root].len(), 2, "DTrip: {{(0,0,0), (1,1,1)}}");
        assert_eq!(prob[root].len(), 3, "PTrip: {{(0,0,0), (1,.5,.5), (2,.75,.75)}}");
        let both =
            prob[root].iter().find(|(t, _)| t.cost == 2.0).expect("attempting both BASs is kept");
        assert!((both.0.damage - 0.75).abs() < 1e-12);
        assert!((both.0.act.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn node_fronts_agree_with_root_front() {
        let cd = factory_cd();
        let fronts = BottomUp::new().node_fronts(&cd, None).unwrap();
        let via_root = cdpf(&cd).unwrap();
        let projected = ParetoFront::from_entries(
            fronts[cd.tree().root().index()]
                .iter()
                .map(|(t, w)| FrontEntry { point: t.project(), witness: w.clone() }),
        );
        assert!(via_root.approx_eq(&projected, 0.0));
    }

    #[test]
    fn factory_min_time_picks_the_fast_branch() {
        // ps = OR(ca, AND(pb, fd)) with durations 1, 3, 2: the OR picks
        // ca's 1 over the AND's 3 + 2 = 5.
        let cd = factory_cd();
        let front = min_time(&cd).unwrap();
        assert_eq!(front.len(), 1);
        let e = &front.entries()[0];
        assert_eq!(e.point.cost, 1.0);
        assert_eq!(e.point.damage, 0.0);
        let w = e.witness.as_ref().unwrap();
        let names: Vec<&str> = w.iter().map(|b| cd.tree().name(cd.tree().node_of_bas(b))).collect();
        assert_eq!(names, vec!["ca"]);
    }

    #[test]
    fn factory_max_prob_picks_the_likelier_branch() {
        // Probabilities ca=0.2, pb=0.4, fd=0.9: the AND branch wins with
        // 0.4 · 0.9 = 0.36 > 0.2.
        let cdp = factory_cdp();
        let front = max_prob(&cdp).unwrap();
        assert_eq!(front.len(), 1);
        let e = &front.entries()[0];
        assert!((e.point.cost - 0.36).abs() < 1e-12);
        let w = e.witness.as_ref().unwrap();
        let names: Vec<&str> =
            w.iter().map(|b| cdp.tree().name(cdp.tree().node_of_bas(b))).collect();
        assert_eq!(names, vec!["pb", "fd"]);
        // The witness reproduces its value: Π of the BAS probabilities.
        let p: f64 = w.iter().map(|b| cdp.prob(b)).product();
        assert!((p - e.point.cost).abs() < 1e-15);
    }

    #[test]
    fn scalar_queries_without_witnesses() {
        let cd = factory_cd();
        let front = BottomUp::new().without_witnesses().min_time(&cd).unwrap();
        assert_eq!(front.entries()[0].point.cost, 1.0);
        assert!(front.entries()[0].witness.is_none());
    }

    #[test]
    fn scalar_queries_reject_dags() {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let g1 = b.or("g1", [x]);
        let g2 = b.or("g2", [x]);
        let _r = b.and("r", [g1, g2]);
        let cd = CdAttackTree::builder(b.build().unwrap()).finish().unwrap();
        assert_eq!(min_time(&cd).unwrap_err(), NotTreelike);
        let cdp = cd.with_probabilities().finish().unwrap();
        assert_eq!(max_prob(&cdp).unwrap_err(), NotTreelike);
    }

    #[test]
    fn dag_inputs_are_rejected() {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let g1 = b.or("g1", [x]);
        let g2 = b.or("g2", [x]);
        let _r = b.and("r", [g1, g2]);
        let cd = CdAttackTree::builder(b.build().unwrap()).finish().unwrap();
        assert_eq!(cdpf(&cd).unwrap_err(), NotTreelike);
        assert_eq!(dgc(&cd, 1.0).unwrap_err(), NotTreelike);
        let cdp = cd.with_probabilities().finish().unwrap();
        assert_eq!(cedpf(&cdp).unwrap_err(), NotTreelike);
    }
}
