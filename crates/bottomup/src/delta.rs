//! Incremental re-solving: retained per-node fronts plus a dirty-path
//! recompute.
//!
//! A what-if question ("how does the front move if this BAS gets cheaper /
//! this gate becomes an AND / this step is defended?") touches a handful of
//! nodes. On a treelike tree the front of every *clean* subtree is unchanged,
//! so only the touched nodes and their ancestors — the dirty root paths —
//! need re-evaluation. [`RetainedFronts`] keeps the full bottom-up solve in
//! kernel (staircase) form; [`RetainedFronts::delta`] re-runs the exact gate
//! fold of the scratch solver over the dirty nodes, borrowing every clean
//! child front from the retained solve.
//!
//! **Byte-identity invariant**: `delta` replicates the scratch recursion
//! operation for operation — the same leaf construction, the same pairwise
//! [`GateScratch`] fold in the same child order, the same settle — and clean
//! child fronts are values a scratch solve of the patched tree would compute
//! bit-for-bit (the patch does not reach them). The resulting root front,
//! witnesses included, is therefore *identical* (not merely equivalent) to a
//! from-scratch solve; the engine and server lean on this to serve what-if
//! responses byte-identical to uncached ones.

use cdat_core::{Attack, AttackTree, BasId, NodeId, NodeType, NotTreelike};
use cdat_pareto::{Activation, GateScratch, Prob, Staircase, Triple};

use crate::recursion::{join_witnesses, staircase_fronts, Front};
use crate::solver::{det_leaf, prob_leaf, project};
use cdat_core::{CdAttackTree, CdpAttackTree};
use cdat_pareto::ParetoFront;

/// A full bottom-up solve with every per-node front retained in staircase
/// form (budget `∞`, witnesses on), ready for incremental reuse.
pub struct RetainedFronts<A: Activation> {
    fronts: Vec<Front<A>>,
}

/// Counters describing one delta recompute.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Nodes re-evaluated: the patched nodes plus their ancestors.
    pub dirty_nodes: usize,
    /// Clean child fronts borrowed from the retained solve.
    pub reused_fronts: usize,
}

/// Retains the deterministic solve of a treelike cd-AT; its
/// [`root_front`](RetainedFronts::root_front) equals [`crate::cdpf`].
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn retain_cdpf(cd: &CdAttackTree) -> Result<RetainedFronts<bool>, NotTreelike> {
    Ok(RetainedFronts {
        fronts: staircase_fronts(cd.tree(), cd.damages(), det_leaf(cd), None, true)?,
    })
}

/// Retains the probabilistic solve of a treelike cdp-AT; its
/// [`root_front`](RetainedFronts::root_front) equals [`crate::cedpf`].
///
/// # Errors
///
/// Returns [`NotTreelike`] for DAG-like trees.
pub fn retain_cedpf(cdp: &CdpAttackTree) -> Result<RetainedFronts<Prob>, NotTreelike> {
    Ok(RetainedFronts {
        fronts: staircase_fronts(cdp.tree(), cdp.cd().damages(), prob_leaf(cdp), None, true)?,
    })
}

impl<A: Activation> RetainedFronts<A> {
    /// The projected root front, exactly as the scratch solver returns it.
    pub fn root_front(&self, tree: &AttackTree) -> ParetoFront {
        project(self.fronts[tree.root().index()].entries().to_vec())
    }

    /// Size of the retained solve in cache points, mirroring the engine's
    /// root-entry convention: one point per front entry plus one per tracked
    /// witness.
    pub fn points(&self) -> usize {
        self.fronts
            .iter()
            .map(|f| f.len() + f.entries().iter().filter(|(_, w)| w.is_some()).count())
            .sum()
    }

    /// Re-solves the tree under a patch, recomputing only the dirty nodes.
    ///
    /// * `tree` — the base tree the retained solve was computed on (the
    ///   patch cannot change the shape, so the same topology applies);
    /// * `damages` — the **patched** damage table, full length;
    /// * `leaf` — the **patched** activating leaf triple, or `None` for a
    ///   defended (forced-off) BAS, whose front collapses to the do-nothing
    ///   entry;
    /// * `node_type` — the **patched** node type (gate swaps applied);
    /// * `touched` — the nodes whose own front the patch changes
    ///   ([`cdat_core::TreePatch::touched`]); ancestors are closed over
    ///   internally.
    ///
    /// Returns the projected root front — bit-for-bit what a scratch solve
    /// of the patched tree returns (see the module docs) — plus the dirty /
    /// reuse counters.
    pub fn delta(
        &self,
        tree: &AttackTree,
        damages: &[f64],
        leaf: impl Fn(BasId) -> Option<Triple<A>>,
        node_type: impl Fn(NodeId) -> NodeType,
        touched: &[NodeId],
    ) -> (ParetoFront, DeltaStats) {
        let n = tree.node_count();
        assert_eq!(self.fronts.len(), n, "retained solve matches the tree");
        assert_eq!(damages.len(), n, "damage table must be indexed by node id");

        // Close the touched set over ancestors: every node above a patched
        // one is dirty too (treelike, so this is the union of root paths).
        let mut dirty = vec![false; n];
        let mut stack: Vec<NodeId> = touched.to_vec();
        for &v in touched {
            dirty[v.index()] = true;
        }
        while let Some(v) = stack.pop() {
            for &p in tree.parents(v) {
                if !std::mem::replace(&mut dirty[p.index()], true) {
                    stack.push(p);
                }
            }
        }

        let mut stats = DeltaStats::default();
        if touched.is_empty() {
            // Nothing changed: the retained root front is the answer.
            stats.reused_fronts = 1;
            return (self.root_front(tree), stats);
        }

        let mut scratch: GateScratch<cdat_pareto::CdTriples<A>, Option<Attack>> =
            GateScratch::new();
        let mut fresh: Vec<Option<Front<A>>> = vec![None; n];
        // Ids are topological (children before parents), so one ascending
        // pass settles every dirty node after its children.
        for v in tree.node_ids() {
            if !dirty[v.index()] {
                continue;
            }
            stats.dirty_nodes += 1;
            let front = match node_type(v) {
                NodeType::Bas => {
                    let b = tree.bas_of_node(v).expect("leaf has a BAS id");
                    let n_bas = tree.bas_count();
                    let mut entries = Vec::with_capacity(2);
                    entries.push((Triple::zero(), Some(Attack::empty(n_bas))));
                    if let Some(active) = leaf(b) {
                        entries.push((active, Some(Attack::from_bas_ids(n_bas, [b]))));
                    }
                    Staircase::minimized(entries, None)
                }
                gate @ (NodeType::Or | NodeType::And) => {
                    let or_gate = matches!(gate, NodeType::Or);
                    let kids = tree.children(v);
                    let dv = damages[v.index()];
                    stats.reused_fronts += kids.iter().filter(|c| !dirty[c.index()]).count();
                    let child = |c: NodeId| -> &Front<A> {
                        fresh[c.index()].as_ref().unwrap_or(&self.fronts[c.index()])
                    };
                    if let [only] = kids {
                        scratch.settle_cloned(child(*only), dv)
                    } else {
                        let mut acc = scratch.combine(
                            or_gate,
                            child(kids[0]),
                            child(kids[1]),
                            None,
                            join_witnesses,
                        );
                        for c in &kids[2..] {
                            let next =
                                scratch.combine(or_gate, &acc, child(*c), None, join_witnesses);
                            scratch.recycle(acc);
                            acc = next;
                        }
                        scratch.settle(acc, dv)
                    }
                }
            };
            fresh[v.index()] = Some(front);
        }

        let root = tree.root().index();
        let entries = match fresh[root].take() {
            Some(front) => front.into_entries(),
            // The root is clean only when `touched` was empty, handled above;
            // defensively fall back to the retained root.
            None => self.fronts[root].entries().to_vec(),
        };
        (project(entries), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cdpf, cedpf};
    use cdat_core::{AttackTreeBuilder, TreePatch};

    fn factory_cdp() -> CdpAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        let tree = b.build().unwrap();
        let mut damage = vec![0.0; 5];
        damage[2] = 10.0;
        damage[3] = 100.0;
        damage[4] = 200.0;
        let cd = CdAttackTree::from_parts(tree, vec![1.0, 3.0, 2.0], damage).unwrap();
        CdpAttackTree::from_parts(cd, vec![0.2, 0.4, 0.9]).unwrap()
    }

    /// Exhaustive byte-identity check of a deterministic delta against a
    /// scratch solve of the materialized patch.
    fn check_det(base: &CdpAttackTree, patch: &TreePatch) {
        let patched = patch.apply(base).unwrap();
        let scratch = cdpf(patched.cd()).unwrap();
        let retained = retain_cdpf(base.cd()).unwrap();
        let mut costs = base.cd().costs().to_vec();
        for &(b, c) in &patch.costs {
            costs[b.index()] = c;
        }
        let mut damages = base.cd().damages().to_vec();
        for &(v, d) in &patch.damages {
            damages[v.index()] = d;
        }
        let types: Vec<NodeType> = {
            let mut t: Vec<NodeType> =
                base.tree().node_ids().map(|v| base.tree().node_type(v)).collect();
            for &(v, ty) in &patch.gates {
                t[v.index()] = ty;
            }
            t
        };
        let (front, stats) = retained.delta(
            base.tree(),
            &damages,
            |b| {
                Some(Triple {
                    cost: costs[b.index()],
                    damage: damages[base.tree().node_of_bas(b).index()],
                    act: true,
                })
            },
            |v| types[v.index()],
            &patch.touched(base.tree()),
        );
        assert_eq!(front, scratch, "delta front must be identical to scratch");
        assert!(stats.dirty_nodes <= base.tree().node_count());
    }

    #[test]
    fn empty_patch_returns_the_retained_root() {
        let base = factory_cdp();
        let retained = retain_cdpf(base.cd()).unwrap();
        let (front, stats) = retained.delta(
            base.tree(),
            base.cd().damages(),
            |b| {
                Some(Triple {
                    cost: base.cd().cost(b),
                    damage: base.cd().damage(base.tree().node_of_bas(b)),
                    act: true,
                })
            },
            |v| base.tree().node_type(v),
            &[],
        );
        assert_eq!(front, cdpf(base.cd()).unwrap());
        assert_eq!(stats, DeltaStats { dirty_nodes: 0, reused_fronts: 1 });
    }

    #[test]
    fn attribute_and_gate_deltas_match_scratch_solves() {
        let base = factory_cdp();
        check_det(&base, &TreePatch { costs: vec![(BasId::new(0), 9.0)], ..Default::default() });
        check_det(&base, &TreePatch { damages: vec![(NodeId::new(3), 5.0)], ..Default::default() });
        check_det(
            &base,
            &TreePatch { gates: vec![(NodeId::new(4), NodeType::And)], ..Default::default() },
        );
        check_det(
            &base,
            &TreePatch {
                costs: vec![(BasId::new(1), 0.5), (BasId::new(2), 11.0)],
                damages: vec![(NodeId::new(4), 300.0)],
                gates: vec![(NodeId::new(3), NodeType::Or)],
                ..Default::default()
            },
        );
    }

    #[test]
    fn probabilistic_delta_matches_scratch() {
        let base = factory_cdp();
        let patch = TreePatch {
            probs: vec![(BasId::new(2), 0.25)],
            costs: vec![(BasId::new(0), 4.0)],
            ..Default::default()
        };
        let patched = patch.apply(&base).unwrap();
        let scratch = cedpf(&patched).unwrap();
        let retained = retain_cedpf(&base).unwrap();
        let mut costs = base.cd().costs().to_vec();
        for &(b, c) in &patch.costs {
            costs[b.index()] = c;
        }
        let mut probs = base.probs().to_vec();
        for &(b, p) in &patch.probs {
            probs[b.index()] = p;
        }
        let damages = base.cd().damages();
        let (front, stats) = retained.delta(
            base.tree(),
            damages,
            |b| {
                let p = probs[b.index()];
                Some(Triple {
                    cost: costs[b.index()],
                    damage: p * damages[base.tree().node_of_bas(b).index()],
                    act: Prob::new(p),
                })
            },
            |v| base.tree().node_type(v),
            &patch.touched(base.tree()),
        );
        assert_eq!(front, scratch);
        assert!(stats.reused_fronts > 0);
    }

    #[test]
    fn defend_collapses_the_leaf_and_dirties_its_root_path() {
        // Forcing ca off must equal solving the tree where ca's activation
        // is impossible; compare against the scratch solve of the residual
        // branch: with ca off, only {∅, {pb,fd}} attacks remain.
        let base = factory_cdp();
        let retained = retain_cdpf(base.cd()).unwrap();
        let tree = base.tree();
        let defended = BasId::new(0); // ca
        let patch = TreePatch { defends: vec![defended], ..Default::default() };
        let (front, stats) = retained.delta(
            tree,
            base.cd().damages(),
            |b| {
                (b != defended).then(|| Triple {
                    cost: base.cd().cost(b),
                    damage: base.cd().damage(tree.node_of_bas(b)),
                    act: true,
                })
            },
            |v| tree.node_type(v),
            &patch.touched(tree),
        );
        // ca's node and the root are dirty; dr's subtree front is reused.
        assert_eq!(stats.dirty_nodes, 2);
        assert_eq!(stats.reused_fronts, 1);
        let points: Vec<(f64, f64)> = front.points().map(|p| (p.cost, p.damage)).collect();
        assert_eq!(points, vec![(0.0, 0.0), (2.0, 10.0), (5.0, 310.0)]);
        // No surviving witness mentions ca.
        for e in front.entries() {
            assert!(!e.witness.as_ref().unwrap().contains(defended));
        }
    }

    #[test]
    fn retained_root_front_is_the_scratch_front() {
        let base = factory_cdp();
        let det = retain_cdpf(base.cd()).unwrap();
        assert_eq!(det.root_front(base.tree()), cdpf(base.cd()).unwrap());
        let prob = retain_cedpf(&base).unwrap();
        assert_eq!(prob.root_front(base.tree()), cedpf(&base).unwrap());
        assert!(det.points() > 0);
    }
}
