//! The generic bottom-up recursion over the extended attribute domain.
//!
//! Gate evaluation runs on the merge-based staircase kernels of
//! `cdat-pareto`: child fronts stay in staircase form end-to-end, the
//! `△`/`▽` product is a heap k-way merge with on-the-fly dominance pruning
//! (witness unions are built for survivors only), and one [`GateScratch`]
//! per pass recycles all intermediate buffers, so a gate allocates only for
//! the front it actually keeps. The pre-kernel materialize-and-sort path is
//! retained in [`crate::ablation`] as a differential oracle; both produce
//! point-for-point identical fronts, witnesses included.

use cdat_core::{Attack, AttackTree, NodeType, NotTreelike};
use cdat_pareto::{Activation, AttributeDomain, CdTriples, GateScratch, Staircase, Triple};

/// One candidate attack at a node: its attribute triple plus (optionally) a
/// witness attack realizing the triple.
pub(crate) type Entry<A> = (Triple<A>, Option<Attack>);

/// A per-node front in kernel form, on the cost–damage domain.
pub(crate) type Front<A> = Staircase<CdTriples<A>, Option<Attack>>;

/// Witness combination for a product entry: the union of the two child
/// attacks (or `None` when witness tracking is off).
pub(crate) fn join_witnesses(a: &Option<Attack>, b: &Option<Attack>) -> Option<Attack> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.union(b)),
        _ => None,
    }
}

/// The front of a BAS node: the inactive zero triple plus (budget
/// permitting) the activating triple.
fn leaf_front<A: Activation>(
    tree: &AttackTree,
    v: cdat_core::NodeId,
    leaf: &impl Fn(cdat_core::BasId) -> Triple<A>,
    budget: Option<f64>,
    witnesses: bool,
) -> Front<A> {
    let n_bas = tree.bas_count();
    let b = tree.bas_of_node(v).expect("leaf has a BAS id");
    let mut entries: Vec<Entry<A>> = Vec::with_capacity(2);
    entries.push((Triple::zero(), witnesses.then(|| Attack::empty(n_bas))));
    let active = leaf(b);
    if budget.is_none_or(|u| active.cost <= u) {
        entries.push((active, witnesses.then(|| Attack::from_bas_ids(n_bas, [b]))));
    }
    // A BAS with zero cost and zero damage yields two identical triples;
    // minimization collapses them.
    Staircase::minimized(entries, budget)
}

/// Computes the Pareto fronts `C_U(v)` of attribute triples at **every**
/// node, for a treelike tree (the per-node sets of the paper's Example 5).
///
/// Same contract as [`root_front`], but child fronts are retained instead of
/// consumed, so peak memory is proportional to the whole tree.
pub(crate) fn node_fronts<A, F>(
    tree: &AttackTree,
    damages: &[f64],
    leaf: F,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Vec<Entry<A>>>, NotTreelike>
where
    A: Activation,
    F: Fn(cdat_core::BasId) -> Triple<A>,
{
    Ok(staircase_fronts(tree, damages, leaf, budget, witnesses)?
        .into_iter()
        .map(Staircase::into_entries)
        .collect())
}

/// [`node_fronts`] before the final unwrap: every per-node front retained in
/// kernel (staircase) form, ready for reuse by the incremental delta solver
/// ([`crate::delta`]) without re-minimization.
pub(crate) fn staircase_fronts<A, F>(
    tree: &AttackTree,
    damages: &[f64],
    leaf: F,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Front<A>>, NotTreelike>
where
    A: Activation,
    F: Fn(cdat_core::BasId) -> Triple<A>,
{
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    assert_eq!(damages.len(), tree.node_count(), "damage table must be indexed by node id");
    let mut scratch: GateScratch<CdTriples<A>, Option<Attack>> = GateScratch::new();
    let mut fronts: Vec<Front<A>> = Vec::with_capacity(tree.node_count());
    for v in tree.node_ids() {
        let front = match tree.node_type(v) {
            NodeType::Bas => leaf_front(tree, v, &leaf, budget, witnesses),
            gate @ (NodeType::Or | NodeType::And) => {
                let or_gate = matches!(gate, NodeType::Or);
                let kids = tree.children(v);
                let dv = damages[v.index()];
                if let [only] = kids {
                    // Single-child gate: the product degenerates to the
                    // child front; settle it without consuming the child.
                    scratch.settle_cloned(&fronts[only.index()], dv)
                } else {
                    let mut acc = scratch.combine(
                        or_gate,
                        &fronts[kids[0].index()],
                        &fronts[kids[1].index()],
                        budget,
                        join_witnesses,
                    );
                    for c in &kids[2..] {
                        // Pruning between folds is sound: the gate operators
                        // and the later damage increment are monotone in
                        // every coordinate, so dominated partial
                        // combinations stay dominated.
                        let next = scratch.combine(
                            or_gate,
                            &acc,
                            &fronts[c.index()],
                            budget,
                            join_witnesses,
                        );
                        scratch.recycle(acc);
                        acc = next;
                    }
                    scratch.settle(acc, dv)
                }
            }
        };
        fronts.push(front);
    }
    Ok(fronts)
}

/// Computes the Pareto front of attribute triples at the **root**,
/// `C_U(R_T)`, for a treelike tree.
///
/// * `damages[v]` — `d(v)`, indexed by node id;
/// * `leaf(b)` — the triple of *activating* BAS `b` (the inactive triple is
///   always added implicitly);
/// * `budget` — the cost bound `U` of `min_U`; `None` means `U = ∞`;
/// * `witnesses` — whether to track one witness attack per triple.
///
/// Child fronts are consumed as soon as their parent is processed, so peak
/// memory is proportional to the fronts on one root-to-leaf "frontier", not
/// to the whole tree.
pub(crate) fn root_front<A, F>(
    tree: &AttackTree,
    damages: &[f64],
    leaf: F,
    budget: Option<f64>,
    witnesses: bool,
) -> Result<Vec<Entry<A>>, NotTreelike>
where
    A: Activation,
    F: Fn(cdat_core::BasId) -> Triple<A>,
{
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    assert_eq!(damages.len(), tree.node_count(), "damage table must be indexed by node id");
    if let Some(u) = budget {
        assert!(!u.is_nan(), "cost budget must not be NaN");
    }

    let mut scratch: GateScratch<CdTriples<A>, Option<Attack>> = GateScratch::new();
    let mut fronts: Vec<Option<Front<A>>> = vec![None; tree.node_count()];

    for v in tree.node_ids() {
        let front = match tree.node_type(v) {
            NodeType::Bas => leaf_front(tree, v, &leaf, budget, witnesses),
            gate @ (NodeType::Or | NodeType::And) => {
                let or_gate = matches!(gate, NodeType::Or);
                let kids = tree.children(v);
                let dv = damages[v.index()];
                let mut acc = fronts[kids[0].index()].take().expect("children precede parents");
                for c in &kids[1..] {
                    let cf = fronts[c.index()].take().expect("children precede parents");
                    let next = scratch.combine(or_gate, &acc, &cf, budget, join_witnesses);
                    scratch.recycle(acc);
                    scratch.recycle(cf);
                    acc = next;
                }
                scratch.settle(acc, dv)
            }
        };
        fronts[v.index()] = Some(front);
    }

    Ok(fronts[tree.root().index()].take().expect("root front computed").into_entries())
}

/// A generic root front: the domain values of the root's Pareto entries,
/// each with its optional witness attack.
pub(crate) type ScalarEntries<D> = Vec<(<D as AttributeDomain>::Value, Option<Attack>)>;

/// Bottom-up evaluation of an arbitrary [`AttributeDomain`] over a treelike
/// tree, returning the root front.
///
/// This is the generic counterpart of [`root_front`] for domains without
/// the cost–damage specifics (no per-node damages to settle, no cost
/// budget): leaves are the singleton `{leaf(b)}`, `AND` gates fold the
/// kernel product, and `OR` gates fold either the product or — on *choice*
/// domains ([`AttributeDomain::OR_IS_CHOICE`]) — the front union, so each
/// entry keeps the witness of the one alternative it came from.
///
/// On totally ordered domains (min-time, max-probability) every front is a
/// singleton and the pass degenerates to a linear semiring evaluation; the
/// machinery still pays off because richer domains ride the same code.
pub(crate) fn generic_root_front<D, F>(
    tree: &AttackTree,
    leaf: F,
    witnesses: bool,
) -> Result<ScalarEntries<D>, NotTreelike>
where
    D: AttributeDomain,
    F: Fn(cdat_core::BasId) -> D::Value,
{
    if !tree.is_treelike() {
        return Err(NotTreelike);
    }
    let n_bas = tree.bas_count();
    let mut scratch: GateScratch<D, Option<Attack>> = GateScratch::new();
    let mut fronts: Vec<Option<Staircase<D, Option<Attack>>>> = vec![None; tree.node_count()];

    for v in tree.node_ids() {
        let front = match tree.node_type(v) {
            NodeType::Bas => {
                let b = tree.bas_of_node(v).expect("leaf has a BAS id");
                Staircase::minimized(
                    vec![(leaf(b), witnesses.then(|| Attack::from_bas_ids(n_bas, [b])))],
                    None,
                )
            }
            gate @ (NodeType::Or | NodeType::And) => {
                let or_gate = matches!(gate, NodeType::Or);
                let kids = tree.children(v);
                let mut acc = fronts[kids[0].index()].take().expect("children precede parents");
                for c in &kids[1..] {
                    let cf = fronts[c.index()].take().expect("children precede parents");
                    let next = if or_gate && D::OR_IS_CHOICE {
                        acc.union(&cf)
                    } else {
                        scratch.combine(or_gate, &acc, &cf, None, join_witnesses)
                    };
                    scratch.recycle(acc);
                    scratch.recycle(cf);
                    acc = next;
                }
                acc
            }
        };
        fronts[v.index()] = Some(front);
    }

    Ok(fronts[tree.root().index()].take().expect("root front computed").into_entries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::AttackTreeBuilder;

    /// Example 5 of the paper: the per-node fronts of the factory AT.
    #[test]
    fn factory_root_front_matches_example_5() {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        let tree = b.build().unwrap();
        let costs = [1.0, 3.0, 2.0]; // ca, pb, fd (BAS id order)
        let damages = [0.0, 0.0, 10.0, 100.0, 200.0];
        let front = root_front::<bool, _>(
            &tree,
            &damages,
            |b| Triple { cost: costs[b.index()], damage: damages[b.index()], act: true },
            None,
            true,
        )
        .unwrap();
        // C_∞(ps): of the six combinations shown in Example 5, (6,310,1) is
        // dominated by (5,310,1) and (2,10,0) by (1,200,1) — the feasible
        // root triples are the four below (their projection is equation (3)).
        let mut got: Vec<(f64, f64, bool)> =
            front.iter().map(|(t, _)| (t.cost, t.damage, t.act)).collect();
        got.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        assert_eq!(
            got,
            vec![(0.0, 0.0, false), (1.0, 200.0, true), (3.0, 210.0, true), (5.0, 310.0, true),]
        );
        // Witnesses reproduce their triples.
        for (t, w) in &front {
            let w = w.as_ref().unwrap();
            let c: f64 = w.iter().map(|b| costs[b.index()]).sum();
            assert_eq!(c, t.cost);
        }
    }

    #[test]
    fn budget_prunes_leaves_and_combinations() {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let _r = b.and("r", [x, y]);
        let tree = b.build().unwrap();
        let costs = [2.0, 3.0];
        let damages = [0.0, 0.0, 50.0];
        // Budget 4: the AND (cost 5) is unreachable; x alone (2) and y alone
        // (3) survive but do no damage.
        let front = root_front::<bool, _>(
            &tree,
            &damages,
            |b| Triple { cost: costs[b.index()], damage: 0.0, act: true },
            Some(4.0),
            true,
        )
        .unwrap();
        assert!(front.iter().all(|(t, _)| t.cost <= 4.0));
        assert!(front.iter().all(|(t, _)| !t.act));
        // Budget 5: the full attack appears.
        let front = root_front::<bool, _>(
            &tree,
            &damages,
            |b| Triple { cost: costs[b.index()], damage: 0.0, act: true },
            Some(5.0),
            true,
        )
        .unwrap();
        assert!(front.iter().any(|(t, _)| t.act && t.damage == 50.0));
    }

    #[test]
    fn dag_is_rejected() {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let g1 = b.or("g1", [x]);
        let g2 = b.or("g2", [x]);
        let _r = b.and("r", [g1, g2]);
        let tree = b.build().unwrap();
        let damages = vec![0.0; 4];
        let err = root_front::<bool, _>(
            &tree,
            &damages,
            |_| Triple { cost: 1.0, damage: 0.0, act: true },
            None,
            false,
        )
        .unwrap_err();
        assert_eq!(err, NotTreelike);
    }

    #[test]
    fn witnesses_disabled_yields_none() {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let _r = b.or("r", [x, y]);
        let tree = b.build().unwrap();
        let damages = vec![0.0, 0.0, 1.0];
        let front = root_front::<bool, _>(
            &tree,
            &damages,
            |_| Triple { cost: 1.0, damage: 0.0, act: true },
            None,
            false,
        )
        .unwrap();
        assert!(front.iter().all(|(_, w)| w.is_none()));
    }

    #[test]
    fn single_child_gate_chains_settle_their_damages() {
        // x under two nested single-child ORs, each adding damage.
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let g1 = b.or("g1", [x]);
        let _g2 = b.or("g2", [g1]);
        let tree = b.build().unwrap();
        let damages = [5.0, 10.0, 100.0];
        let front = root_front::<bool, _>(
            &tree,
            &damages,
            |_| Triple { cost: 2.0, damage: 5.0, act: true },
            None,
            true,
        )
        .unwrap();
        let mut got: Vec<(f64, f64, bool)> =
            front.iter().map(|(t, _)| (t.cost, t.damage, t.act)).collect();
        got.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(got, vec![(0.0, 0.0, false), (2.0, 115.0, true)]);
        // The retained-front variant agrees on every node.
        let all = node_fronts::<bool, _>(
            &tree,
            &damages,
            |_| Triple { cost: 2.0, damage: 5.0, act: true },
            None,
            true,
        )
        .unwrap();
        assert_eq!(all[tree.root().index()], front);
    }
}
