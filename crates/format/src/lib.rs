//! A human-writable text format for cost-damage attack trees.
//!
//! The format is indentation-based, one node per line, parents before
//! children:
//!
//! ```text
//! # The paper's factory example (Fig. 1).
//! or "production shutdown" damage=200
//!   bas cyberattack cost=1 prob=0.2
//!   and "destroy robot" damage=100
//!     bas "place bomb" cost=3 prob=0.4
//!     bas "force door" cost=2 damage=10 prob=0.9
//! ```
//!
//! * `bas NAME`, `or NAME`, `and NAME` declare a node; quote names containing
//!   spaces. Gates list their children on the following, deeper-indented
//!   lines.
//! * Attributes are `key=value` pairs: `damage` on any node, `cost` and
//!   `prob` on BASs only (matching the cd-AT model: internal costs can be
//!   simulated by dummy BASs, internal damage cannot be pushed down).
//! * `ref NAME` makes an already-declared node a child of the current gate —
//!   this is how shared nodes (DAG-like trees) are written.
//! * `#` starts a comment; blank lines are ignored.
//!
//! [`parse`] reads a document into a [`CdpAttackTree`](cdat_core::CdpAttackTree)
//! (probabilities default
//! to 1, so deterministic documents round-trip through the same type);
//! [`write()`] renders one back, using `ref` for every shared node.
//!
//! Multi-document *suites* pack many trees into one file, separated by
//! `--- [name]` lines ([`parse_multi`]/[`write_multi`]); this is the input
//! format of the `cdat batch` subcommand and the batch engine.
//!
//! The [`json`] module is the std-only JSON layer shared by the serving
//! protocol (`cdat-server`) and the JSON-lines output of `cdat batch`.
//!
//! # Example
//!
//! ```
//! let text = r#"
//! or goal damage=10
//!   bas pick-lock cost=5
//!   bas smash-window cost=1 damage=2
//! "#;
//! let cdp = cdat_format::parse(text)?;
//! assert_eq!(cdp.tree().bas_count(), 2);
//! assert_eq!(cdp.cd().max_damage(), 12.0);
//! # Ok::<(), cdat_format::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod multi;
mod parser;
mod writer;

pub use multi::{parse_multi, write_multi, Document};
pub use parser::{parse, parse_cd, ParseError};
pub use writer::{write, write_cd};
