//! Multi-document suites: many attack trees in one file.
//!
//! A *suite* is a sequence of ordinary documents separated by `---` lines;
//! an optional name for the following document may trail the dashes:
//!
//! ```text
//! --- factory
//! or "production shutdown" damage=200
//!   bas cyberattack cost=1
//! --- lockpick
//! or goal damage=10
//!   bas pick-lock cost=5
//! ```
//!
//! The separator before the first document is optional (so every plain
//! document is also a one-document suite). Comments and blank lines between
//! documents belong to the following document.

use cdat_core::CdpAttackTree;

use crate::parser::{parse, ParseError};

/// One document of a multi-document suite.
#[derive(Clone, Debug)]
pub struct Document {
    /// The name given on the document's `--- name` separator, if any.
    pub name: Option<String>,
    /// The parsed tree.
    pub tree: CdpAttackTree,
}

/// Recognizes a separator line; returns the trailing document name.
fn separator(line: &str) -> Option<Option<String>> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix("---")?;
    // Avoid eating node lines: after the dashes only a name may follow.
    let name = rest.trim();
    Some(if name.is_empty() { None } else { Some(name.to_owned()) })
}

/// Parses a multi-document suite.
///
/// # Errors
///
/// Propagates [`ParseError`]s of the individual documents with line numbers
/// remapped to the whole file; an empty document between two separators
/// (or a suite with no documents at all) is an error.
pub fn parse_multi(text: &str) -> Result<Vec<Document>, ParseError> {
    // Chunk boundaries: (name, 0-based line of first chunk line, lines).
    let mut chunks: Vec<(Option<String>, usize, Vec<&str>)> = Vec::new();
    let mut current: (Option<String>, usize, Vec<&str>) = (None, 0, Vec::new());
    let mut seen_separator = false;
    let has_content =
        |lines: &[&str]| lines.iter().any(|l| !l.trim().is_empty() && !l.trim().starts_with('#'));
    for (i, line) in text.lines().enumerate() {
        if let Some(name) = separator(line) {
            // Preamble comments before the first separator belong to no
            // document; a contentful chunk is a document of its own.
            if seen_separator || has_content(&current.2) {
                chunks.push(current);
            }
            current = (name, i + 1, Vec::new());
            seen_separator = true;
        } else {
            current.2.push(line);
        }
    }
    chunks.push(current);

    let mut documents = Vec::with_capacity(chunks.len());
    for (ordinal, (name, offset, lines)) in chunks.into_iter().enumerate() {
        let body = lines.join("\n");
        let tree = parse(&body).map_err(|e| remap(e, ordinal, offset))?;
        documents.push(Document { name, tree });
    }
    Ok(documents)
}

/// Shifts a per-document error to whole-file coordinates.
fn remap(e: ParseError, ordinal: usize, offset: usize) -> ParseError {
    match e.line {
        Some(line) => ParseError { line: Some(line + offset), message: e.message },
        None => ParseError {
            line: None,
            message: format!("document {} (line {}): {}", ordinal + 1, offset + 1, e.message),
        },
    }
}

/// Renders documents into a multi-document suite that [`parse_multi`]
/// reads back; every document gets a separator line (named when a name is
/// given).
pub fn write_multi<'a, I>(documents: I) -> String
where
    I: IntoIterator<Item = (Option<&'a str>, &'a CdpAttackTree)>,
{
    let mut out = String::new();
    for (name, tree) in documents {
        match name {
            Some(name) => {
                out.push_str("--- ");
                out.push_str(name);
                out.push('\n');
            }
            None => out.push_str("---\n"),
        }
        out.push_str(&crate::writer::write(tree));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUITE: &str = r#"# a two-tree suite
--- factory
or ps damage=200
  bas ca cost=1 prob=0.2
  and dr damage=100
    bas pb cost=3
    bas fd cost=2 damage=10
--- lockpick
or goal damage=10
  bas pick-lock cost=5
  bas smash-window cost=1 damage=2
"#;

    #[test]
    fn parses_named_documents() {
        let docs = parse_multi(SUITE).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].name.as_deref(), Some("factory"));
        assert_eq!(docs[1].name.as_deref(), Some("lockpick"));
        assert_eq!(docs[0].tree.tree().node_count(), 5);
        assert_eq!(docs[1].tree.tree().bas_count(), 2);
    }

    #[test]
    fn plain_documents_are_one_document_suites() {
        let docs = parse_multi("or root damage=1\n  bas x cost=2\n").unwrap();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].name.is_none());
        assert_eq!(docs[0].tree.cd().max_damage(), 1.0);
    }

    #[test]
    fn unnamed_separators_and_leading_separator() {
        let docs = parse_multi("---\nor a\n  bas x\n---\nor b\n  bas y\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().all(|d| d.name.is_none()));
        assert_eq!(docs[1].tree.tree().name(docs[1].tree.tree().root()), "b");
    }

    #[test]
    fn error_lines_are_remapped_to_the_whole_file() {
        let text = "--- ok\nor a\n  bas x\n--- broken\nor b\n  zap y\n";
        let err = parse_multi(text).unwrap_err();
        assert_eq!(err.line, Some(6), "{err}");
        assert!(err.to_string().contains("expected bas/or/and/ref"));
    }

    /// A parse error in the Nth document must carry the whole-file line
    /// number, also when earlier documents sit behind blank (unnamed)
    /// separators and are padded with blank lines and comments.
    #[test]
    fn error_lines_survive_blank_separators_and_padding() {
        // Line numbers (1-based):        1        2       3          4
        let text = concat!(
            "--- a\n",     // 1
            "or x\n",      // 2
            "  bas y\n",   // 3
            "---\n",       // 4  (blank separator, unnamed document)
            "\n",          // 5
            "# padding\n", // 6
            "or z\n",      // 7
            "  bas w\n",   // 8
            "--- c\n",     // 9
            "\n",          // 10
            "or b\n",      // 11
            "  zap q\n",   // 12 <- the error
        );
        let err = parse_multi(text).unwrap_err();
        assert_eq!(err.line, Some(12), "{err}");
        assert!(err.to_string().starts_with("line 12:"), "{err}");
        assert!(err.to_string().contains("expected bas/or/and/ref"), "{err}");
    }

    /// The same remapping holds for the document right after a blank
    /// separator (the document whose chunk offset is the separator line).
    #[test]
    fn error_lines_in_the_document_after_a_blank_separator() {
        let err = parse_multi("or ok\n  bas fine\n---\n\nor bad\n  zap nope\n").unwrap_err();
        assert_eq!(err.line, Some(6), "{err}");
    }

    /// Errors in the first document (no separator at all) keep their
    /// native line numbers.
    #[test]
    fn error_lines_in_an_unseparated_first_document() {
        let err = parse_multi("# comment\nor a\n  zap x\n").unwrap_err();
        assert_eq!(err.line, Some(3), "{err}");
    }

    /// Attribute errors (not just syntax errors) remap too — they are
    /// detected in a later pass of the per-document parser.
    #[test]
    fn attribute_error_lines_are_remapped() {
        let text = "--- a\nor x\n  bas y\n--- b\nor z damage=2\n  bas w prob=1.5\n";
        let err = parse_multi(text).unwrap_err();
        assert_eq!(err.line, Some(6), "{err}");
    }

    #[test]
    fn empty_documents_are_rejected_with_context() {
        let err = parse_multi("--- a\nor x\n  bas y\n--- empty\n# nothing\n").unwrap_err();
        assert!(err.to_string().contains("document 2"), "{err}");
        assert!(err.to_string().contains("no nodes"), "{err}");
        let err = parse_multi("").unwrap_err();
        assert!(err.to_string().contains("no nodes"), "{err}");
    }

    #[test]
    fn round_trips_through_write_multi() {
        let docs = parse_multi(SUITE).unwrap();
        let rendered = write_multi(docs.iter().map(|d| (d.name.as_deref(), &d.tree)));
        let reparsed = parse_multi(&rendered).unwrap();
        assert_eq!(reparsed.len(), docs.len());
        for (a, b) in docs.iter().zip(&reparsed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.tree.tree().node_count(), b.tree.tree().node_count());
            assert_eq!(a.tree.cd().max_damage(), b.tree.cd().max_damage());
        }
    }

    #[test]
    fn separators_inside_names_do_not_split() {
        // A quoted node name containing dashes is not a separator (the
        // separator must start the trimmed line).
        let docs = parse_multi("or \"root --- not a separator\"\n  bas x\n").unwrap();
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn dag_documents_round_trip_in_suites() {
        let dag =
            "or root\n  and g1\n    bas x cost=1\n    bas y\n  and g2\n    ref x\n    bas z\n";
        let text = format!("--- a\n{dag}--- b\n{dag}");
        let docs = parse_multi(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().all(|d| !d.tree.tree().is_treelike()));
        let rendered = write_multi(docs.iter().map(|d| (d.name.as_deref(), &d.tree)));
        assert_eq!(parse_multi(&rendered).unwrap().len(), 2);
    }
}
