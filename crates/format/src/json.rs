//! A minimal JSON layer for the serving protocol and the batch CLI.
//!
//! The workspace is std-only (no serde), but the serving front-end speaks
//! newline-delimited JSON. This module provides the small subset needed:
//! a strict parser into a [`Value`] tree, a renderer that round-trips
//! values (used to echo request ids verbatim), and the two primitives the
//! CLI's hand-rolled JSON writers share ([`escape`], [`num`]).
//!
//! The parser is strict about structure: no trailing garbage, no
//! NaN/Infinity, no comments, no duplicate object keys, and string escapes
//! must be valid. Numbers delegate to Rust's `f64` parsing, which is
//! slightly more lenient than RFC 8259 (it accepts e.g. leading zeros and
//! `1.`). Nesting depth is capped at [`MAX_DEPTH`] so hostile input cannot
//! overflow the stack.

use std::fmt;

/// Maximum nesting depth [`parse`] accepts.
pub const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
///
/// Objects preserve insertion order (they are small in this protocol);
/// duplicate keys are rejected at parse time.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Renders the value as compact JSON (no whitespace); parses back to
    /// an equal value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(v) => f.write_str(&num(*v)),
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{value}", escape(key))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-compatible rendering of a finite number (Rust's `Display` for `f64`
/// never produces exponents, infinities or NaN for the finite attribute
/// values this workspace handles).
pub fn num(v: f64) -> String {
    format!("{v}")
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset for syntax errors,
/// non-finite numbers, duplicate object keys, bad escapes and inputs
/// nested deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected character {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a str"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("invalid escape \\{:?}", other as char));
                        }
                    }
                }
                Some(_) => return Err(format!("raw control character at byte {}", self.pos)),
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `\u` is already consumed),
    /// combining UTF-16 surrogate pairs. Surrogate errors carry the byte
    /// offset of the offending `\uXXXX` escape (protocol requests are one
    /// line, so the byte offset is the line position).
    fn unicode_escape(&mut self) -> Result<char, String> {
        let at = self.pos.saturating_sub(2); // offset of the escape's `\`
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(format!(
                        "invalid low surrogate \\u{second:04x} after high surrogate at byte {at}"
                    ));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(format!("unpaired high surrogate \\u{first:04x} at byte {at}"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(format!("unpaired low surrogate \\u{first:04x} at byte {at}"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| format!("invalid unicode escape at byte {at}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape {digits:?}"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a str");
        let v: f64 =
            text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("number {text:?} overflows f64"));
        }
        Ok(Value::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"id":7,"tree":"or a\n","args":[1,2,[]],"deep":{"x":null}}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("tree").and_then(Value::as_str), Some("or a\n"));
        assert_eq!(
            v.get("args"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Arr(vec![])]))
        );
        assert!(v.get("deep").unwrap().get("x").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600} control\u{1}";
        let rendered = format!("\"{}\"", escape(original));
        assert_eq!(parse(&rendered).unwrap(), Value::Str(original.into()));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(parse(r#""A😀""#).unwrap(), Value::Str("A\u{1F600}".into()));
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"a":[1,2.5,"x\ny",null,true],"b":{"c":false}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "nul",
            "1e999",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "1 2",
            "{\"a\":1}x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn surrogate_error_paths_report_positions() {
        // Lone high surrogate at end of string.
        let err = parse(r#""ab\ud800""#).unwrap_err();
        assert!(err.contains("unpaired high surrogate"), "{err}");
        assert!(err.contains("at byte 3"), "{err}");
        // High surrogate followed by a non-\uXXXX token.
        for tail in ["x", r"\n", " \\u0041"] {
            let text = format!("\"\\ud83d{tail}\"");
            let err = parse(&text).unwrap_err();
            assert!(err.contains("unpaired high surrogate \\ud83d"), "{text:?}: {err}");
            assert!(err.contains("at byte 1"), "{text:?}: {err}");
        }
        // High surrogate followed by a \uXXXX that is not a low surrogate.
        let err = parse(r#""\ud800\u0041""#).unwrap_err();
        assert!(err.contains("invalid low surrogate \\u0041"), "{err}");
        assert!(err.contains("at byte 1"), "{err}");
        // Unpaired low surrogate.
        let err = parse(r#""x\udc00y""#).unwrap_err();
        assert!(err.contains("unpaired low surrogate \\udc00"), "{err}");
        assert!(err.contains("at byte 2"), "{err}");
        // Valid pairs still parse (the happy path is untouched).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("\u{1F600}".into()));
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn num_renders_plain_decimal() {
        assert_eq!(num(10.0), "10");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(-3.25), "-3.25");
    }
}
