//! Rendering attack trees back to the text format.

use std::fmt::Write as _;

use cdat_core::{CdAttackTree, CdpAttackTree, NodeId, NodeType};

fn quote(name: &str) -> String {
    let needs_quoting = name.is_empty()
        || name.chars().any(|c| c.is_whitespace() || c == '"' || c == '#' || c == '=')
        || matches!(name, "bas" | "or" | "and" | "ref");
    if needs_quoting {
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        format!("\"{escaped}\"")
    } else {
        name.to_owned()
    }
}

fn fmt_value(v: f64) -> String {
    // Plain decimal (attributes are human-scale in this domain).
    let s = format!("{v}");
    s
}

/// Renders a cdp-AT to the text format; shared nodes are written once and
/// referenced with `ref` afterwards, so DAG-like trees round-trip.
pub fn write(cdp: &CdpAttackTree) -> String {
    render(cdp.cd(), Some(cdp.probs()))
}

/// Renders a cd-AT (no probability attributes).
pub fn write_cd(cd: &CdAttackTree) -> String {
    render(cd, None)
}

fn render(cd: &CdAttackTree, probs: Option<&[f64]>) -> String {
    let tree = cd.tree();
    let mut out = String::new();
    let mut written = vec![false; tree.node_count()];
    let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    while let Some((v, depth)) = stack.pop() {
        let indent = "  ".repeat(depth);
        if std::mem::replace(&mut written[v.index()], true) {
            let _ = writeln!(out, "{indent}ref {}", quote(tree.name(v)));
            continue;
        }
        let keyword = match tree.node_type(v) {
            NodeType::Bas => "bas",
            NodeType::Or => "or",
            NodeType::And => "and",
        };
        let mut line = format!("{indent}{keyword} {}", quote(tree.name(v)));
        if let Some(b) = tree.bas_of_node(v) {
            if cd.cost(b) != 0.0 {
                let _ = write!(line, " cost={}", fmt_value(cd.cost(b)));
            }
        }
        if cd.damage(v) != 0.0 {
            let _ = write!(line, " damage={}", fmt_value(cd.damage(v)));
        }
        if let (Some(probs), Some(b)) = (probs, tree.bas_of_node(v)) {
            if probs[b.index()] != 1.0 {
                let _ = write!(line, " prob={}", fmt_value(probs[b.index()]));
            }
        }
        let _ = writeln!(out, "{line}");
        // Push children in reverse so they render in declaration order.
        for &c in tree.children(v).iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(text: &str) -> CdpAttackTree {
        let cdp = parse(text).expect("input parses");
        let rendered = write(&cdp);
        parse(&rendered).unwrap_or_else(|e| panic!("rendered text must parse: {e}\n{rendered}"))
    }

    fn semantically_equal(a: &CdpAttackTree, b: &CdpAttackTree) -> bool {
        if a.tree().node_count() != b.tree().node_count()
            || a.tree().bas_count() != b.tree().bas_count()
        {
            return false;
        }
        // Same names, same attributes, same attack semantics (compare by
        // evaluating all attacks via name-based mapping).
        let n = a.tree().bas_count();
        if n > 12 {
            return true; // structural checks above only
        }
        cdat_core::Attack::all(n).all(|x| {
            let names: Vec<&str> =
                x.iter().map(|bas| a.tree().name(a.tree().node_of_bas(bas))).collect();
            let y = b.tree().attack_of_names(names.iter().copied()).expect("same BAS names");
            a.cd().cost_of(&x) == b.cd().cost_of(&y) && a.cd().damage_of(&x) == b.cd().damage_of(&y)
        })
    }

    #[test]
    fn factory_round_trips() {
        let text = r#"
or "production shutdown" damage=200
  bas cyberattack cost=1 prob=0.2
  and "destroy robot" damage=100
    bas "place bomb" cost=3 prob=0.4
    bas "force door" cost=2 damage=10 prob=0.9
"#;
        let original = parse(text).unwrap();
        let reparsed = round_trip(text);
        assert!(semantically_equal(&original, &reparsed));
    }

    #[test]
    fn dag_round_trips_with_refs() {
        let text = r#"
or root damage=7
  and g1
    bas x cost=1
    bas y cost=2
  and g2
    ref x
    bas z cost=3 prob=0.5
"#;
        let original = parse(text).unwrap();
        let rendered = write(&original);
        assert!(rendered.contains("ref x"), "shared node must render as ref:\n{rendered}");
        let reparsed = parse(&rendered).unwrap();
        assert!(!reparsed.tree().is_treelike());
        assert!(semantically_equal(&original, &reparsed));
    }

    #[test]
    fn models_round_trip() {
        for cdp in [cdat_models::panda_cdp(), cdat_models::factory_cdp()] {
            let rendered = write(&cdp);
            let reparsed = parse(&rendered).expect("model renders to valid text");
            assert_eq!(reparsed.tree().node_count(), cdp.tree().node_count());
            assert_eq!(reparsed.tree().bas_count(), cdp.tree().bas_count());
        }
        let ds = cdat_models::dataserver();
        let rendered = write_cd(&ds);
        let reparsed = crate::parser::parse_cd(&rendered).expect("DAG renders to valid text");
        assert!(!reparsed.tree().is_treelike());
        assert_eq!(reparsed.tree().node_count(), ds.tree().node_count());
    }

    #[test]
    fn keywords_and_special_names_are_quoted() {
        let text = "or \"or\" damage=1\n  bas \"a b\" cost=1\n  bas \"x=y\" cost=2";
        let rendered = write(&parse(text).unwrap());
        assert!(rendered.contains("or \"or\""));
        assert!(rendered.contains("\"a b\""));
        assert!(rendered.contains("\"x=y\""));
        parse(&rendered).expect("quoted output reparses");
    }

    #[test]
    fn random_trees_round_trip() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(606);
        for case in 0..40 {
            let treelike = rng.gen_bool(0.5);
            let tree = cdat_gen_lite(&mut rng, treelike);
            let cd = cdat_core::CdAttackTree::from_parts(
                tree.clone(),
                (0..tree.bas_count()).map(|_| rng.gen_range(0..9) as f64).collect(),
                (0..tree.node_count()).map(|_| rng.gen_range(0..9) as f64).collect(),
            )
            .unwrap();
            let prob: Vec<f64> =
                (0..tree.bas_count()).map(|_| rng.gen_range(1..=10) as f64 / 10.0).collect();
            let cdp = cdat_core::CdpAttackTree::from_parts(cd, prob).unwrap();
            let reparsed = parse(&write(&cdp)).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert!(semantically_equal(&cdp, &reparsed), "case {case}");
        }
    }

    /// Small random tree generator local to this crate (cdat-gen depends on
    /// models, which would be circular as a dev-dependency here).
    fn cdat_gen_lite(rng: &mut impl rand::Rng, treelike: bool) -> cdat_core::AttackTree {
        use cdat_core::{AttackTreeBuilder, NodeId};
        let mut b = AttackTreeBuilder::new();
        let n_bas = rng.gen_range(1..=6);
        let mut pool: Vec<NodeId> = (0..n_bas).map(|i| b.bas(&format!("b{i}"))).collect();
        let mut counter = 0;
        while pool.len() > 1 {
            let k = 2.min(pool.len());
            let mut kids = Vec::new();
            for _ in 0..k {
                let i = rng.gen_range(0..pool.len());
                kids.push(pool.swap_remove(i));
            }
            if !treelike && counter > 0 && rng.gen_bool(0.4) {
                let extra = NodeId::new(rng.gen_range(0..b.node_count()));
                if !kids.contains(&extra) {
                    kids.push(extra);
                }
            }
            let name = format!("g{counter}");
            counter += 1;
            let id = if rng.gen_bool(0.5) { b.or(&name, kids) } else { b.and(&name, kids) };
            pool.push(id);
        }
        b.build().unwrap()
    }
}
