//! Parsing the text format.

use std::collections::HashMap;
use std::fmt;

use cdat_core::{AttackTreeBuilder, CdAttackTree, CdpAttackTree, NodeId, NodeType};

/// Error while parsing an attack-tree document.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line the error was detected on, when known.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ParseError { line: Some(line), message: message.into() }
    }

    fn global(message: impl Into<String>) -> Self {
        ParseError { line: None, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Kind {
    Bas,
    Or,
    And,
    Ref,
}

#[derive(Clone, Debug)]
struct Record {
    line: usize,
    kind: Kind,
    name: String,
    cost: Option<f64>,
    damage: Option<f64>,
    prob: Option<f64>,
    children: Vec<usize>,
}

/// Parses a document into a cdp-AT (probabilities default to 1, so purely
/// deterministic documents work too).
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for syntax problems, bad
/// indentation, unknown `ref` targets, reference cycles, duplicate names,
/// attribute misuse (cost/prob on gates) and out-of-range values.
pub fn parse(text: &str) -> Result<CdpAttackTree, ParseError> {
    let records = scan(text)?;
    build(records)
}

/// Parses a document and keeps only the cost-damage layer.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_cd(text: &str) -> Result<CdAttackTree, ParseError> {
    parse(text).map(|cdp| cdp.cd().clone())
}

/// Splits a line into whitespace-separated fields, honoring double quotes
/// with backslash escapes.
fn fields(line: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break; // trailing comment
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(ParseError::at(lineno, "unterminated quoted name")),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some(e @ ('"' | '\\')) => s.push(e),
                        _ => return Err(ParseError::at(lineno, "bad escape in quoted name")),
                    },
                    Some(other) => s.push(other),
                }
            }
            out.push(s);
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '#' {
                    break;
                }
                s.push(c);
                chars.next();
            }
            out.push(s);
        }
    }
    Ok(out)
}

fn scan(text: &str) -> Result<Vec<Record>, ParseError> {
    let mut records: Vec<Record> = Vec::new();
    // Stack of (indent, record index) along the current root-to-leaf path.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let indent = raw.len() - raw.trim_start().len();
        let parts = fields(raw, lineno)?;
        if parts.is_empty() {
            continue;
        }
        let kind = match parts[0].as_str() {
            "bas" => Kind::Bas,
            "or" => Kind::Or,
            "and" => Kind::And,
            "ref" => Kind::Ref,
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("expected bas/or/and/ref, found {other:?}"),
                ))
            }
        };
        let name =
            parts.get(1).cloned().ok_or_else(|| ParseError::at(lineno, "missing node name"))?;
        let mut rec = Record {
            line: lineno,
            kind,
            name,
            cost: None,
            damage: None,
            prob: None,
            children: Vec::new(),
        };
        for attr in &parts[2..] {
            let (key, value) = attr.split_once('=').ok_or_else(|| {
                ParseError::at(lineno, format!("expected key=value, found {attr:?}"))
            })?;
            let value: f64 = value
                .parse()
                .map_err(|_| ParseError::at(lineno, format!("bad number {value:?}")))?;
            let slot = match key {
                "cost" => &mut rec.cost,
                "damage" => &mut rec.damage,
                "prob" => &mut rec.prob,
                _ => return Err(ParseError::at(lineno, format!("unknown attribute {key:?}"))),
            };
            if slot.replace(value).is_some() {
                return Err(ParseError::at(lineno, format!("duplicate attribute {key:?}")));
            }
        }
        // Validate probabilities here, where the line number is still
        // known: the later whole-tree validation only reports globally.
        if let Some(p) = rec.prob {
            if !(0.0..=1.0).contains(&p) {
                return Err(ParseError::at(lineno, format!("prob {p} is outside [0, 1]")));
            }
        }
        if rec.kind == Kind::Ref
            && (rec.cost.is_some() || rec.damage.is_some() || rec.prob.is_some())
        {
            return Err(ParseError::at(lineno, "ref lines cannot carry attributes"));
        }

        // Find the parent by indentation.
        while stack.last().is_some_and(|&(ind, _)| ind >= indent) {
            stack.pop();
        }
        match stack.last() {
            None => {
                if !records.is_empty() {
                    // A second node at (or above) root indentation.
                    return Err(ParseError::at(
                        lineno,
                        "more than one top-level node; attack trees have a single root",
                    ));
                }
                if rec.kind == Kind::Ref {
                    return Err(ParseError::at(lineno, "the root cannot be a ref"));
                }
            }
            Some(&(_, parent)) => {
                if records[parent].kind == Kind::Bas {
                    return Err(ParseError::at(
                        lineno,
                        format!("BAS {:?} cannot have children", records[parent].name),
                    ));
                }
                let idx = records.len();
                records[parent].children.push(idx);
            }
        }
        stack.push((indent, records.len()));
        records.push(rec);
    }
    if records.is_empty() {
        return Err(ParseError::global("document contains no nodes"));
    }
    Ok(records)
}

fn build(records: Vec<Record>) -> Result<CdpAttackTree, ParseError> {
    // Resolve names: every non-ref record declares one.
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if r.kind != Kind::Ref && by_name.insert(r.name.as_str(), i).is_some() {
            return Err(ParseError::at(r.line, format!("duplicate node name {:?}", r.name)));
        }
    }
    // Attribute placement checks.
    for r in &records {
        if matches!(r.kind, Kind::Or | Kind::And) {
            if r.cost.is_some() {
                return Err(ParseError::at(
                    r.line,
                    format!(
                        "cost on gate {:?}: only BASs carry costs (add a dummy BAS child instead)",
                        r.name
                    ),
                ));
            }
            if r.prob.is_some() {
                return Err(ParseError::at(
                    r.line,
                    format!("prob on gate {:?}: only BASs carry probabilities", r.name),
                ));
            }
            if r.children.is_empty() {
                return Err(ParseError::at(r.line, format!("gate {:?} has no children", r.name)));
            }
        }
    }

    // Emit children-first into the builder, resolving refs and catching
    // reference cycles.
    #[derive(Copy, Clone, PartialEq)]
    enum State {
        Unvisited,
        Visiting,
        Done(NodeId),
    }
    struct Emit<'a> {
        records: &'a [Record],
        by_name: &'a HashMap<&'a str, usize>,
        builder: AttackTreeBuilder,
        state: Vec<State>,
    }
    impl Emit<'_> {
        fn emit(&mut self, i: usize) -> Result<NodeId, ParseError> {
            let r = &self.records[i];
            match self.state[i] {
                State::Done(id) => return Ok(id),
                State::Visiting => {
                    return Err(ParseError::at(
                        r.line,
                        format!("reference cycle through {:?}", r.name),
                    ))
                }
                State::Unvisited => {}
            }
            self.state[i] = State::Visiting;
            let id = match r.kind {
                Kind::Bas => self.builder.bas(&r.name),
                Kind::Or | Kind::And => {
                    let mut kids = Vec::with_capacity(r.children.len());
                    for &c in &r.children {
                        let target = self.resolve(c)?;
                        let kid = self.emit(target)?;
                        if kids.contains(&kid) {
                            return Err(ParseError::at(
                                self.records[c].line,
                                format!("gate {:?} lists the same child twice", r.name),
                            ));
                        }
                        kids.push(kid);
                    }
                    let ty = if r.kind == Kind::Or { NodeType::Or } else { NodeType::And };
                    self.builder.gate(&r.name, ty, kids)
                }
                Kind::Ref => unreachable!("refs are resolved before emission"),
            };
            self.state[i] = State::Done(id);
            Ok(id)
        }

        /// Follows a ref record to its declaration; plain records map to
        /// themselves.
        fn resolve(&self, i: usize) -> Result<usize, ParseError> {
            let r = &self.records[i];
            if r.kind != Kind::Ref {
                return Ok(i);
            }
            self.by_name.get(r.name.as_str()).copied().ok_or_else(|| {
                ParseError::at(r.line, format!("ref to undeclared node {:?}", r.name))
            })
        }
    }

    let mut emit = Emit {
        records: &records,
        by_name: &by_name,
        builder: AttackTreeBuilder::new(),
        state: vec![State::Unvisited; records.len()],
    };
    emit.emit(0)?;
    // Any declaration never emitted would be unreachable from the root; the
    // indentation pass makes every record a descendant of record 0, so this
    // is defensive only.
    if let Some((_, r)) = records
        .iter()
        .enumerate()
        .find(|(i, r)| r.kind != Kind::Ref && emit.state[*i] == State::Unvisited)
    {
        return Err(ParseError::at(
            r.line,
            format!("node {:?} is unreachable from the root", r.name),
        ));
    }

    let tree =
        emit.builder.build().map_err(|e| ParseError::global(format!("invalid tree: {e}")))?;

    let mut cost = vec![0.0; tree.bas_count()];
    let mut damage = vec![0.0; tree.node_count()];
    let mut prob = vec![1.0; tree.bas_count()];
    for (i, r) in records.iter().enumerate() {
        if r.kind == Kind::Ref {
            continue;
        }
        let State::Done(id) = emit.state[i] else { unreachable!("checked above") };
        if let Some(d) = r.damage {
            damage[id.index()] = d;
        }
        if let Some(b) = tree.bas_of_node(id) {
            if let Some(c) = r.cost {
                cost[b.index()] = c;
            }
            if let Some(p) = r.prob {
                prob[b.index()] = p;
            }
        }
    }
    let cd = CdAttackTree::from_parts(tree, cost, damage)
        .map_err(|e| ParseError::global(format!("invalid attributes: {e}")))?;
    CdpAttackTree::from_parts(cd, prob)
        .map_err(|e| ParseError::global(format!("invalid probabilities: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTORY: &str = r#"
# The paper's factory example.
or "production shutdown" damage=200
  bas cyberattack cost=1 prob=0.2
  and "destroy robot" damage=100
    bas "place bomb" cost=3 prob=0.4
    bas "force door" cost=2 damage=10 prob=0.9
"#;

    #[test]
    fn parses_the_factory_example() {
        let cdp = parse(FACTORY).unwrap();
        let t = cdp.tree();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.bas_count(), 3);
        assert_eq!(t.name(t.root()), "production shutdown");
        assert!(t.is_treelike());
        let x = t.attack_of_names(["place bomb", "force door"]).unwrap();
        assert_eq!(cdp.cd().cost_of(&x), 5.0);
        assert_eq!(cdp.cd().damage_of(&x), 310.0);
        let b = t.bas_of_node(t.find("cyberattack").unwrap()).unwrap();
        assert_eq!(cdp.prob(b), 0.2);
    }

    #[test]
    fn refs_build_dags() {
        let text = r#"
or root
  and g1
    bas x cost=1
    bas y cost=2
  and g2 damage=5
    ref x
    bas z cost=3
"#;
        let cdp = parse(text).unwrap();
        assert!(!cdp.tree().is_treelike());
        let x = cdp.tree().find("x").unwrap();
        assert_eq!(cdp.tree().parents(x).len(), 2);
    }

    #[test]
    fn forward_refs_are_allowed() {
        let text = r#"
or root
  and g1
    ref x
    bas y
  bas x cost=4
"#;
        let cdp = parse(text).unwrap();
        let x = cdp.tree().find("x").unwrap();
        assert_eq!(cdp.tree().parents(x).len(), 2, "child of g1 and of root");
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("or root\n  zap x", "expected bas/or/and/ref"),
            ("or root\n  bas", "missing node name"),
            ("or root\n  bas x cost", "expected key=value"),
            ("or root\n  bas x cost=abc", "bad number"),
            ("or root\n  bas x size=1", "unknown attribute"),
            ("or root\n  bas x cost=1 cost=2", "duplicate attribute"),
            ("or root\n  bas x\nbas y", "more than one top-level node"),
            ("or root\n  bas x\n  bas x", "duplicate node name"),
            ("or root\n  ref y", "ref to undeclared node"),
            ("or root damage=1", "no children"),
            ("or root cost=2\n  bas x", "cost on gate"),
            ("or root prob=0.5\n  bas x", "prob on gate"),
            ("or root\n  bas x\n    bas y", "cannot have children"),
            ("ref root", "the root cannot be a ref"),
            ("or root\n  ref x cost=1", "ref lines cannot carry attributes"),
            ("or root\n  bas \"x", "unterminated quoted name"),
            ("or root\n  bas x prob=1.5", "outside [0, 1]"),
        ];
        for (text, needle) in cases {
            let err = parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} should fail with {needle:?}, got {err}"
            );
        }
    }

    #[test]
    fn ref_with_attributes_is_rejected() {
        let err = parse("or root\n  bas x\n  ref x damage=3").unwrap_err();
        assert!(err.to_string().contains("ref lines cannot carry attributes"), "{err}");
    }

    #[test]
    fn reference_cycles_are_rejected() {
        let text = r#"
or root
  or a
    ref b
  or b
    ref a
"#;
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("reference cycle"), "{err}");
    }

    #[test]
    fn empty_documents_are_rejected() {
        let err = parse("# nothing here\n\n").unwrap_err();
        assert!(err.to_string().contains("no nodes"));
    }

    #[test]
    fn quoted_names_with_escapes() {
        let text = "or \"the \\\"root\\\"\"\n  bas \"a \\\\ b\" cost=1";
        let cdp = parse(text).unwrap();
        assert_eq!(cdp.tree().name(cdp.tree().root()), "the \"root\"");
        assert!(cdp.tree().find("a \\ b").is_some());
    }

    #[test]
    fn trailing_comments_are_stripped() {
        let text = "or root damage=5 # the goal\n  bas x cost=1 # cheap";
        let cdp = parse(text).unwrap();
        assert_eq!(cdp.cd().damage(cdp.tree().root()), 5.0);
    }

    #[test]
    fn parse_cd_drops_probabilities() {
        let cd = parse_cd(FACTORY).unwrap();
        assert_eq!(cd.max_damage(), 310.0);
    }
}
