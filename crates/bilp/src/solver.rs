//! CDPF / DgC / CgD for DAG-like trees via the BILP encoding.

use cdat_core::CdAttackTree;
use cdat_ilp::{granularity, BiobjectiveProblem, IlpProblem, LinearConstraint, Relation};
use cdat_pareto::{FrontEntry, ParetoFront};

use crate::encode::encode;

/// Fallback ε-constraint decrement when the cost coefficients have no
/// recognizable decimal granularity.
const FALLBACK_DELTA: f64 = 1e-9;

/// Cost-damage Pareto front of any (treelike or DAG-like) cd-AT via
/// bi-objective ILP (Theorem 6).
///
/// Every front entry carries a witness attack; points are re-evaluated with
/// the exact tree semantics, so the reported numbers are bit-identical to
/// what `CdAttackTree::{cost_of, damage_of}` produce for the witnesses.
///
/// The ε-constraint decrement is derived from the cost coefficients
/// ([`granularity`]); for costs without decimal structure use
/// [`cdpf_with_delta`] and supply a bound on the smallest cost gap yourself.
pub fn cdpf(cd: &CdAttackTree) -> ParetoFront {
    cdpf_with_delta(cd, granularity(cd.costs()).unwrap_or(FALLBACK_DELTA))
}

/// [`cdpf`] with an explicit ε-constraint decrement `delta` (must be positive
/// and at most the smallest gap between distinct attainable attack costs).
///
/// # Panics
///
/// Panics if `delta ≤ 0`.
pub fn cdpf_with_delta(cd: &CdAttackTree, delta: f64) -> ParetoFront {
    let e = encode(cd);
    let problem = BiobjectiveProblem {
        num_vars: e.num_vars,
        f1: e.cost.clone(),
        f2: e.neg_damage.clone(),
        constraints: e.constraints.clone(),
    };
    let points = problem.pareto_front(delta);
    ParetoFront::from_entries(points.into_iter().map(|p| {
        let attack = e.attack_of(cd, &p.values);
        let cost = cd.cost_of(&attack);
        let damage = cd.damage_of(&attack);
        debug_assert!(
            (cost - p.f1).abs() < 1e-6 && (damage + p.f2).abs() < 1e-6,
            "ILP objectives ({}, {}) disagree with tree semantics ({cost}, {damage})",
            p.f1,
            -p.f2,
        );
        FrontEntry::with_witness(cost, damage, attack)
    }))
}

/// Maximal damage within a cost budget via constrained single-objective ILP
/// (Theorem 7), lexicographically refined to the cheapest maximizer.
///
/// Returns `None` only when the budget is negative.
pub fn dgc(cd: &CdAttackTree, budget: f64) -> Option<FrontEntry> {
    let e = encode(cd);
    // Step 1: maximize damage subject to cost ≤ budget.
    let mut constraints = e.constraints.clone();
    constraints.push(LinearConstraint::new(
        e.cost.iter().copied().enumerate().collect(),
        Relation::Le,
        budget,
    ));
    let step1 = IlpProblem {
        num_vars: e.num_vars,
        objective: e.neg_damage.clone(),
        constraints: constraints.clone(),
    }
    .solve()?;
    // Step 2: cheapest solution achieving that damage.
    constraints.push(LinearConstraint::new(
        e.neg_damage.iter().copied().enumerate().collect(),
        Relation::Le,
        step1.objective + 1e-6,
    ));
    let step2 = IlpProblem { num_vars: e.num_vars, objective: e.cost.clone(), constraints }
        .solve()
        .expect("step 2 feasible: step 1 solution satisfies it");
    let attack = e.attack_of(cd, &step2.values);
    Some(FrontEntry::with_witness(cd.cost_of(&attack), cd.damage_of(&attack), attack))
}

/// Minimal cost achieving a damage threshold via constrained
/// single-objective ILP (Theorem 7), lexicographically refined to the most
/// damaging attack at that cost.
///
/// Returns `None` when the threshold exceeds the maximal damage.
pub fn cgd(cd: &CdAttackTree, threshold: f64) -> Option<FrontEntry> {
    let e = encode(cd);
    // Step 1: minimize cost subject to damage ≥ threshold.
    let mut constraints = e.constraints.clone();
    constraints.push(LinearConstraint::new(
        e.neg_damage.iter().copied().enumerate().collect(),
        Relation::Le,
        -threshold,
    ));
    let step1 = IlpProblem {
        num_vars: e.num_vars,
        objective: e.cost.clone(),
        constraints: constraints.clone(),
    }
    .solve()?;
    // Step 2: most damaging attack within that cost.
    constraints.push(LinearConstraint::new(
        e.cost.iter().copied().enumerate().collect(),
        Relation::Le,
        step1.objective + 1e-6,
    ));
    let step2 = IlpProblem { num_vars: e.num_vars, objective: e.neg_damage.clone(), constraints }
        .solve()
        .expect("step 2 feasible: step 1 solution satisfies it");
    let attack = e.attack_of(cd, &step2.values);
    Some(FrontEntry::with_witness(cd.cost_of(&attack), cd.damage_of(&attack), attack))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::{AttackTreeBuilder, NodeType};
    use cdat_pareto::CostDamage;
    use rand::prelude::*;

    fn factory_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("ca", 1.0)
            .unwrap()
            .cost("pb", 3.0)
            .unwrap()
            .cost("fd", 2.0)
            .unwrap()
            .damage("fd", 10.0)
            .unwrap()
            .damage("dr", 100.0)
            .unwrap()
            .damage("ps", 200.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn factory_cdpf_matches_equation_3() {
        let front = cdpf(&factory_cd());
        assert_eq!(front.to_string(), "{(0, 0), (1, 200), (3, 210), (5, 310)}");
    }

    #[test]
    fn factory_dgc_and_cgd() {
        let cd = factory_cd();
        assert_eq!(dgc(&cd, 2.0).unwrap().point, CostDamage::new(1.0, 200.0));
        assert_eq!(dgc(&cd, 5.0).unwrap().point, CostDamage::new(5.0, 310.0));
        assert_eq!(cgd(&cd, 205.0).unwrap().point, CostDamage::new(3.0, 210.0));
        assert!(cgd(&cd, 311.0).is_none());
        assert!(dgc(&cd, -1.0).is_none());
    }

    /// A DAG where the bottom-up approach would double-count the shared BAS.
    fn shared_dag_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let x = b.bas("x");
        let y = b.bas("y");
        let z = b.bas("z");
        let g1 = b.and("g1", [x, y]);
        let g2 = b.and("g2", [x, z]);
        let _r = b.or("r", [g1, g2]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("x", 5.0)
            .unwrap()
            .cost("y", 2.0)
            .unwrap()
            .cost("z", 3.0)
            .unwrap()
            .damage("g1", 10.0)
            .unwrap()
            .damage("g2", 10.0)
            .unwrap()
            .damage("r", 20.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn shared_dag_front_matches_enumeration() {
        let cd = shared_dag_cd();
        assert!(!cd.tree().is_treelike());
        let front = cdpf(&cd);
        let reference = cdat_enumerative::cdpf(&cd, false);
        assert!(front.approx_eq(&reference, 1e-9), "{front} vs {reference}");
        // The shared x is paid once: {x,y,z} costs 10 and reaches everything.
        assert!(front.points().any(|p| p == CostDamage::new(10.0, 40.0)));
    }

    /// Random DAG generator: each gate picks 2 children among earlier nodes.
    fn random_dag_cd(rng: &mut StdRng) -> CdAttackTree {
        let n_bas = rng.gen_range(2..=6);
        let n_gates = rng.gen_range(1..=5);
        let mut b = AttackTreeBuilder::new();
        let mut pool: Vec<cdat_core::NodeId> =
            (0..n_bas).map(|i| b.bas(&format!("b{i}"))).collect();
        let mut parentless: Vec<cdat_core::NodeId> = pool.clone();
        for g in 0..n_gates {
            let ty = if rng.gen_bool(0.5) { NodeType::Or } else { NodeType::And };
            let k = rng.gen_range(1..=2.min(pool.len()));
            // Prefer parentless nodes so the result converges to one root.
            let mut children: Vec<cdat_core::NodeId> = Vec::new();
            for _ in 0..k {
                let src = if !parentless.is_empty() && rng.gen_bool(0.8) {
                    let i = rng.gen_range(0..parentless.len());
                    parentless.swap_remove(i)
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if !children.contains(&src) {
                    children.push(src);
                }
            }
            let id = b.gate(&format!("g{g}"), ty, children);
            pool.push(id);
            parentless.push(id);
        }
        // Tie all remaining parentless nodes under one root.
        let root_children: Vec<_> = parentless.into_iter().collect();
        if root_children.len() > 1 {
            b.or("root", root_children);
        }
        let tree = b.build().unwrap();
        let cost: Vec<f64> = (0..tree.bas_count()).map(|_| rng.gen_range(0..6) as f64).collect();
        let damage: Vec<f64> = (0..tree.node_count()).map(|_| rng.gen_range(0..6) as f64).collect();
        CdAttackTree::from_parts(tree, cost, damage).unwrap()
    }

    #[test]
    fn random_dags_match_enumeration() {
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..60 {
            let cd = random_dag_cd(&mut rng);
            let front = cdpf(&cd);
            let reference = cdat_enumerative::cdpf(&cd, false);
            assert!(
                front.approx_eq(&reference, 1e-9),
                "case {case}: BILP {front} vs enumeration {reference}"
            );
            // Spot-check the single-objective problems against the front.
            for budget in [0.0, 2.0, 5.0, 100.0] {
                let a = dgc(&cd, budget).map(|e| e.point.damage);
                let b = reference.max_damage_within(budget).map(|e| e.point.damage);
                assert_eq!(a, b, "case {case} dgc({budget})");
            }
            for threshold in [0.0, 3.0, 10.0] {
                let a = cgd(&cd, threshold).map(|e| e.point.cost);
                let b = reference.min_cost_achieving(threshold).map(|e| e.point.cost);
                assert_eq!(a, b, "case {case} cgd({threshold})");
            }
        }
    }

    #[test]
    fn witnesses_reproduce_points() {
        let cd = shared_dag_cd();
        for e in cdpf(&cd).entries() {
            let w = e.witness.as_ref().expect("BILP always tracks witnesses");
            assert_eq!(cd.cost_of(w), e.point.cost);
            assert_eq!(cd.damage_of(w), e.point.damage);
        }
    }

    #[test]
    fn treelike_trees_agree_with_bottom_up_semantics() {
        // The factory example again but via from_parts-style assertions: the
        // BILP front equals the enumerative one on treelike input.
        let cd = factory_cd();
        let a = cdpf(&cd);
        let b = cdat_enumerative::cdpf(&cd, false);
        assert!(a.approx_eq(&b, 1e-9));
    }
}
