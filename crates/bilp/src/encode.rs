//! The Theorem 6 encoding of a cd-AT as a bi-objective 0-1 program.

use cdat_core::{Attack, CdAttackTree, NodeType};
use cdat_ilp::{LinearConstraint, Relation};

/// The BILP encoding of a cd-AT: one binary variable per tree node (indexed
/// by `NodeId::index()`), gate constraints, and the two objective vectors.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// Number of variables (= number of tree nodes).
    pub num_vars: usize,
    /// Cost objective `Σ c(v)·y_v` (nonzero only at BAS indices); minimized.
    pub cost: Vec<f64>,
    /// Negated damage objective `−Σ d(v)·y_v`; minimized (= damage maximized).
    pub neg_damage: Vec<f64>,
    /// The gate constraints of Theorem 6.
    pub constraints: Vec<LinearConstraint>,
}

impl Encoding {
    /// Extracts the attack encoded by an assignment: the BASs with `y = 1`.
    pub fn attack_of(&self, cd: &CdAttackTree, values: &[bool]) -> Attack {
        let tree = cd.tree();
        let mut attack = tree.empty_attack();
        for b in tree.bas_ids() {
            if values[tree.node_of_bas(b).index()] {
                attack.insert(b);
            }
        }
        attack
    }
}

/// Builds the Theorem 6 encoding of `cd`.
///
/// The constraints only enforce `y_v ≤ S(y|_B, v)`; solutions where the
/// inequality is strict are feasible but never Pareto-optimal, because
/// raising `y_v` to `S(y|_B, v)` is free and weakly increases damage.
pub fn encode(cd: &CdAttackTree) -> Encoding {
    let tree = cd.tree();
    let n = tree.node_count();
    let mut cost = vec![0.0; n];
    for b in tree.bas_ids() {
        cost[tree.node_of_bas(b).index()] = cd.cost(b);
    }
    let neg_damage: Vec<f64> = (0..n).map(|i| -cd.damages()[i]).collect();

    let mut constraints = Vec::new();
    for v in tree.node_ids() {
        match tree.node_type(v) {
            NodeType::Bas => {}
            NodeType::And => {
                for &w in tree.children(v) {
                    // y_v − y_w ≤ 0
                    constraints.push(LinearConstraint::new(
                        vec![(v.index(), 1.0), (w.index(), -1.0)],
                        Relation::Le,
                        0.0,
                    ));
                }
            }
            NodeType::Or => {
                // y_v − Σ y_w ≤ 0
                let mut coefficients = vec![(v.index(), 1.0)];
                coefficients.extend(tree.children(v).iter().map(|w| (w.index(), -1.0)));
                constraints.push(LinearConstraint::new(coefficients, Relation::Le, 0.0));
            }
        }
    }
    Encoding { num_vars: n, cost, neg_damage, constraints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat_core::AttackTreeBuilder;

    fn factory_cd() -> CdAttackTree {
        let mut b = AttackTreeBuilder::new();
        let ca = b.bas("ca");
        let pb = b.bas("pb");
        let fd = b.bas("fd");
        let dr = b.and("dr", [pb, fd]);
        let _ps = b.or("ps", [ca, dr]);
        CdAttackTree::builder(b.build().unwrap())
            .cost("ca", 1.0)
            .unwrap()
            .cost("pb", 3.0)
            .unwrap()
            .cost("fd", 2.0)
            .unwrap()
            .damage("fd", 10.0)
            .unwrap()
            .damage("dr", 100.0)
            .unwrap()
            .damage("ps", 200.0)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn example_7_encoding_shape() {
        // Example 7: one constraint per AND child + one per OR gate.
        let cd = factory_cd();
        let e = encode(&cd);
        assert_eq!(e.num_vars, 5);
        assert_eq!(e.constraints.len(), 3); // dr≤pb, dr≤fd, ps≤ca+dr
        assert_eq!(e.cost, vec![1.0, 3.0, 2.0, 0.0, 0.0]);
        assert_eq!(e.neg_damage, vec![0.0, 0.0, -10.0, -100.0, -200.0]);
    }

    #[test]
    fn structure_function_assignments_are_feasible() {
        // y = S(x, ·) satisfies every constraint, for every attack.
        let cd = factory_cd();
        let e = encode(&cd);
        for x in Attack::all(3) {
            let s = cd.tree().structure(&x);
            let yf: Vec<f64> = s.iter().map(|&b| f64::from(b)).collect();
            for c in &e.constraints {
                assert!(c.satisfied_by(&yf, 1e-12), "S(x,·) infeasible for {x:?}");
            }
        }
    }

    #[test]
    fn attack_extraction_reads_bas_variables() {
        let cd = factory_cd();
        let e = encode(&cd);
        let values = vec![true, false, true, false, true]; // ca, fd set
        let attack = e.attack_of(&cd, &values);
        let names: Vec<&str> =
            attack.iter().map(|b| cd.tree().name(cd.tree().node_of_bas(b))).collect();
        assert_eq!(names, vec!["ca", "fd"]);
    }
}
