//! BILP solvers for DAG-like attack trees (paper Section VII).
//!
//! Bottom-up propagation breaks on DAG-like attack trees: a shared node's
//! cost and damage would be counted once per parent. The paper's answer is a
//! translation to *bi-objective integer linear programming*: one binary
//! variable `y_v` per node, intended to represent `S(x, v)`, with
//!
//! * `y_v ≤ y_w` for every child `w` of an `AND` gate `v`,
//! * `y_v ≤ Σ_{w∈Ch(v)} y_w` for every `OR` gate `v`,
//!
//! and objectives `min Σ_{v∈B} c(v)·y_v` (cost) and `max Σ_{v∈N} d(v)·y_v`
//! (damage). The constraints only force `y_v ≤ S(x, v)`; maximizing damage
//! makes the inequality tight at every Pareto-optimal solution (Theorem 6),
//! which [`cdpf`] double-checks by re-evaluating each witness attack with the
//! exact tree semantics.
//!
//! [`dgc`] and [`cgd`] are the constrained single-objective versions
//! (Theorem 7) — they do not need the full front.
//!
//! Everything works on treelike trees too (useful for cross-validation), but
//! the bottom-up solver is the better tool there. The probabilistic problems
//! are **not** expressible this way (`PS` makes the constraints nonlinear);
//! the paper leaves them open, and `cdat-enumerative::cedpf_dag` provides an
//! exact exponential fallback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod solver;

pub use encode::{encode, Encoding};
pub use solver::{cdpf, cdpf_with_delta, cgd, dgc};
