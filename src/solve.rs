//! One-call solvers that dispatch on the shape of the tree.
//!
//! The paper's algorithm choice depends on the tree (Table I): treelike
//! trees use the bottom-up propagation, DAG-like trees the BDD-fused front
//! solver (`cdat_bdd::fuse`), which staircase-merges over a decision
//! diagram of the queried attribute and is exact under shared BASs — the
//! direction the paper's conclusion sketches for its open problem. These
//! functions make that choice automatically; the batch engine exposes the
//! same choice (and the BILP and enumerative alternatives) as
//! [`SolverBackend`] with per-request [`SolverHint`]s.

use cdat_core::{CdAttackTree, CdpAttackTree};
use cdat_pareto::{FrontEntry, ParetoFront};

pub use cdat_bdd::add::AddLimit;
pub use cdat_engine::{
    BatchRequest, BatchResult, CacheStats, DeltaRequest, DeltaResult, Engine, EngineMetrics,
    EngineSnapshot, FrontCache, FrontKind, PersistentFrontCache, Query, Response, SolverBackend,
    SolverHint, StoreSnapshot, SubtreeMemo, TreePatch,
};

/// The backend the dispatching solvers will use for this tree — what
/// [`SolverBackend::select`] picks for an `auto` hint.
pub fn backend_for(cd: &CdAttackTree) -> SolverBackend {
    if cd.tree().is_treelike() {
        SolverBackend::BottomUp
    } else {
        SolverBackend::BddFused
    }
}

/// Cost-damage Pareto front of any cd-AT (CDPF).
///
/// Treelike trees use the bottom-up solver, DAG-like trees the BDD-fused
/// solver (with the BILP encoding as fallback if the decision diagram
/// exceeds its node budget); all return exact fronts with witness attacks.
///
/// # Example
///
/// ```
/// let front = cdat::solve::cdpf(&cdat_models::factory());
/// assert_eq!(front.to_string(), "{(0, 0), (1, 200), (3, 210), (5, 310)}");
/// ```
pub fn cdpf(cd: &CdAttackTree) -> ParetoFront {
    match backend_for(cd) {
        SolverBackend::BottomUp => cdat_bottomup::cdpf(cd).expect("dispatched on shape"),
        _ => cdat_bdd::fuse::cdpf(cd).unwrap_or_else(|_| cdat_bilp::cdpf(cd)),
    }
}

/// Maximal damage within a cost budget (DgC). `None` only for a negative
/// budget.
pub fn dgc(cd: &CdAttackTree, budget: f64) -> Option<FrontEntry> {
    match backend_for(cd) {
        SolverBackend::BottomUp => cdat_bottomup::dgc(cd, budget).expect("dispatched on shape"),
        _ => cdpf(cd).max_damage_within(budget).cloned(),
    }
}

/// Minimal cost achieving a damage threshold (CgD). `None` when the
/// threshold exceeds the maximal damage.
pub fn cgd(cd: &CdAttackTree, threshold: f64) -> Option<FrontEntry> {
    match backend_for(cd) {
        SolverBackend::BottomUp => cdat_bottomup::cgd(cd, threshold).expect("dispatched on shape"),
        _ => cdpf(cd).min_cost_achieving(threshold).cloned(),
    }
}

/// Cost–expected-damage Pareto front (CEDPF) of any cdp-AT.
///
/// Treelike trees use the bottom-up solver; DAG-like trees the BDD-fused
/// solver, which is exact under shared BASs (the paper's open problem;
/// see `cdat_bdd::fuse`).
///
/// # Errors
///
/// Returns [`AddLimit`] when a DAG-like tree's decision diagram exceeds
/// the node budget — the only failure mode.
pub fn cedpf(cdp: &CdpAttackTree) -> Result<ParetoFront, AddLimit> {
    match cdat_bottomup::cedpf(cdp) {
        Ok(front) => Ok(front),
        Err(_) => cdat_bdd::fuse::cedpf(cdp),
    }
}

/// Maximal expected damage within a cost budget (EDgC).
///
/// # Errors
///
/// Returns [`AddLimit`] when a DAG-like tree's decision diagram exceeds
/// the node budget.
pub fn edgc(cdp: &CdpAttackTree, budget: f64) -> Result<Option<FrontEntry>, AddLimit> {
    match cdat_bottomup::edgc(cdp, budget) {
        Ok(entry) => Ok(entry),
        Err(_) => Ok(cdat_bdd::fuse::cedpf(cdp)?.max_damage_within(budget).cloned()),
    }
}

/// Minimal cost achieving an expected-damage threshold (CgED).
///
/// # Errors
///
/// Returns [`AddLimit`] when a DAG-like tree's decision diagram exceeds
/// the node budget.
pub fn cged(cdp: &CdpAttackTree, threshold: f64) -> Result<Option<FrontEntry>, AddLimit> {
    match cdat_bottomup::cged(cdp, threshold) {
        Ok(entry) => Ok(entry),
        Err(_) => Ok(cdat_bdd::fuse::cedpf(cdp)?.min_cost_achieving(threshold).cloned()),
    }
}

/// Minimal time-to-attack of any cd-AT, reading each BAS's cost attribute
/// as its duration: `AND` sums child times, `OR` takes the faster child
/// (the min-plus semiring over the generic staircase kernel,
/// [`cdat_pareto::MinTime`]). The returned entry carries the duration in
/// its cost slot (damage 0) and a witness attack achieving it.
///
/// Treelike trees run the bottom-up kernel; DAG-like trees the BDD-fused
/// kernel (shared BASs are counted once), with exact enumeration as
/// fallback if the decision diagram exceeds its node budget.
///
/// # Panics
///
/// Panics on DAG-like trees that exhaust the diagram budget *and* have
/// more than [`cdat_enumerative::MAX_ENUM_BAS`] BASs, where the
/// enumerative fallback is intractable too (the batch engine returns a
/// clean error instead).
pub fn min_time(cd: &CdAttackTree) -> Option<FrontEntry> {
    let front = match cdat_bottomup::min_time(cd) {
        Ok(front) => front,
        Err(_) => {
            cdat_bdd::fuse::min_time(cd).unwrap_or_else(|_| cdat_enumerative::min_time(cd, true))
        }
    };
    front.entries().first().cloned()
}

/// Maximal single-attack success probability of any cdp-AT: `AND`
/// multiplies child probabilities, `OR` takes the likelier child (the
/// Viterbi semiring, [`cdat_pareto::MaxProb`]) — the likeliest *single*
/// attack, unlike [`cedpf`]'s combinators which let the attacker attempt
/// several alternatives. The returned entry carries the probability in its
/// cost slot (damage 0) and a witness attack achieving it.
///
/// Treelike trees run the bottom-up kernel; DAG-like trees the BDD-fused
/// kernel (shared BASs succeed once, so their probability is multiplied
/// once), with exact enumeration as fallback if the decision diagram
/// exceeds its node budget.
///
/// # Panics
///
/// Panics on DAG-like trees that exhaust the diagram budget *and* have
/// more than [`cdat_enumerative::MAX_ENUM_BAS`] BASs (the batch engine
/// returns a clean error instead).
pub fn max_prob(cdp: &CdpAttackTree) -> Option<FrontEntry> {
    let front = match cdat_bottomup::max_prob(cdp) {
        Ok(front) => front,
        Err(_) => {
            cdat_bdd::fuse::max_prob(cdp).unwrap_or_else(|_| cdat_enumerative::max_prob(cdp, true))
        }
    };
    front.entries().first().cloned()
}

/// Exact CEDPF for **any** cdp-AT by exhaustive enumeration on DAG-like
/// trees (BDD-exact per-attack expected damage) — the oracle the polynomial
/// [`cedpf`] path is differentially tested against.
///
/// # Panics
///
/// Panics on DAG-like trees with more than
/// [`cdat_enumerative::MAX_ENUM_BAS`] BASs, where enumeration is
/// intractable.
pub fn cedpf_exhaustive(cdp: &CdpAttackTree) -> ParetoFront {
    match cdat_bottomup::cedpf(cdp) {
        Ok(front) => front,
        Err(_) => cdat_enumerative::cedpf_dag(cdp, true),
    }
}

/// Solves a batch of requests on `workers` threads, deduplicating
/// structurally identical trees and memoizing fronts for the duration of
/// the batch (one-shot facade over [`Engine`]; keep an [`Engine`] when the
/// cache should persist across batches).
///
/// Results are deterministic — responses and cache-hit flags do not depend
/// on `workers`. Witness attacks are available per request via
/// [`BatchRequest::with_witnesses`], translated into each requesting
/// tree's own BAS numbering even when the answer comes from a cached
/// front of a renamed/reordered copy; see [`cdat_engine`] for the
/// guarantees.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cdat::solve::{batch, BatchRequest, Query, Response};
///
/// let tree = Arc::new(cdat_models::factory_cdp());
/// let requests: Vec<BatchRequest> =
///     (0..=5).map(|b| BatchRequest::new(tree.clone(), Query::Dgc(b as f64))).collect();
/// let results = batch(&requests, 4);
/// assert_eq!(results.iter().filter(|r| r.cache_hit).count(), 5, "one front, six answers");
/// assert!(matches!(&results[2].response, Response::Entry(Some(e)) if e.point.damage == 200.0));
/// ```
pub fn batch(requests: &[BatchRequest], workers: usize) -> Vec<BatchResult> {
    Engine::new(workers).run(requests)
}
