//! One-call solvers that dispatch on the shape of the tree.
//!
//! The paper's algorithm choice depends on the tree (Table I): treelike
//! trees use the bottom-up propagation, DAG-like trees the BILP encoding
//! (deterministic only — the probabilistic DAG case is the paper's open
//! problem). These functions make that choice automatically.

use cdat_core::{CdAttackTree, CdpAttackTree};
use cdat_pareto::{FrontEntry, ParetoFront};

pub use cdat_engine::{
    BatchRequest, BatchResult, CacheStats, DeltaRequest, DeltaResult, Engine, EngineMetrics,
    EngineSnapshot, FrontCache, FrontKind, PersistentFrontCache, Query, Response, SolverHint,
    StoreSnapshot, SubtreeMemo, TreePatch,
};

/// Which backend [`cdpf`] and friends will pick for a tree.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Backend {
    /// Treelike tree: bottom-up Pareto propagation (`cdat-bottomup`).
    BottomUp,
    /// DAG-like tree: bi-objective ILP (`cdat-bilp`).
    Bilp,
}

/// The backend the dispatching solvers will use for this tree.
pub fn backend_for(cd: &CdAttackTree) -> Backend {
    if cd.tree().is_treelike() {
        Backend::BottomUp
    } else {
        Backend::Bilp
    }
}

/// Cost-damage Pareto front of any cd-AT (CDPF).
///
/// Treelike trees use the bottom-up solver, DAG-like trees the BILP solver;
/// both return exact fronts with witness attacks.
///
/// # Example
///
/// ```
/// let front = cdat::solve::cdpf(&cdat_models::factory());
/// assert_eq!(front.to_string(), "{(0, 0), (1, 200), (3, 210), (5, 310)}");
/// ```
pub fn cdpf(cd: &CdAttackTree) -> ParetoFront {
    match backend_for(cd) {
        Backend::BottomUp => cdat_bottomup::cdpf(cd).expect("dispatched on shape"),
        Backend::Bilp => cdat_bilp::cdpf(cd),
    }
}

/// Maximal damage within a cost budget (DgC). `None` only for a negative
/// budget.
pub fn dgc(cd: &CdAttackTree, budget: f64) -> Option<FrontEntry> {
    match backend_for(cd) {
        Backend::BottomUp => cdat_bottomup::dgc(cd, budget).expect("dispatched on shape"),
        Backend::Bilp => cdat_bilp::dgc(cd, budget),
    }
}

/// Minimal cost achieving a damage threshold (CgD). `None` when the
/// threshold exceeds the maximal damage.
pub fn cgd(cd: &CdAttackTree, threshold: f64) -> Option<FrontEntry> {
    match backend_for(cd) {
        Backend::BottomUp => cdat_bottomup::cgd(cd, threshold).expect("dispatched on shape"),
        Backend::Bilp => cdat_bilp::cgd(cd, threshold),
    }
}

/// Error: the probabilistic problems on DAG-like trees have no known
/// efficient algorithm (the paper's open problem).
///
/// [`cedpf_exhaustive`] offers an exact exponential fallback for small trees.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DagProbabilisticOpen;

impl std::fmt::Display for DagProbabilisticOpen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "probabilistic analysis of DAG-like attack trees is an open problem; \
             use cdat::solve::cedpf_exhaustive for an exact exponential fallback"
        )
    }
}

impl std::error::Error for DagProbabilisticOpen {}

/// Cost–expected-damage Pareto front (CEDPF) of a treelike cdp-AT.
///
/// # Errors
///
/// Returns [`DagProbabilisticOpen`] on DAG-like trees.
pub fn cedpf(cdp: &CdpAttackTree) -> Result<ParetoFront, DagProbabilisticOpen> {
    cdat_bottomup::cedpf(cdp).map_err(|_| DagProbabilisticOpen)
}

/// Maximal expected damage within a cost budget (EDgC).
///
/// # Errors
///
/// Returns [`DagProbabilisticOpen`] on DAG-like trees.
pub fn edgc(cdp: &CdpAttackTree, budget: f64) -> Result<Option<FrontEntry>, DagProbabilisticOpen> {
    cdat_bottomup::edgc(cdp, budget).map_err(|_| DagProbabilisticOpen)
}

/// Minimal cost achieving an expected-damage threshold (CgED).
///
/// # Errors
///
/// Returns [`DagProbabilisticOpen`] on DAG-like trees.
pub fn cged(
    cdp: &CdpAttackTree,
    threshold: f64,
) -> Result<Option<FrontEntry>, DagProbabilisticOpen> {
    cdat_bottomup::cged(cdp, threshold).map_err(|_| DagProbabilisticOpen)
}

/// Minimal time-to-attack of any cd-AT, reading each BAS's cost attribute
/// as its duration: `AND` sums child times, `OR` takes the faster child
/// (the min-plus semiring over the generic staircase kernel,
/// [`cdat_pareto::MinTime`]). The returned entry carries the duration in
/// its cost slot (damage 0) and a witness attack achieving it.
///
/// Treelike trees run the bottom-up kernel; DAG-like trees fall back to
/// exact enumeration (shared BASs are counted once).
///
/// # Panics
///
/// Panics on DAG-like trees with more than
/// [`cdat_enumerative::MAX_ENUM_BAS`] BASs, where the enumerative fallback
/// is intractable (the batch engine returns a clean error instead).
pub fn min_time(cd: &CdAttackTree) -> Option<FrontEntry> {
    let front = match cdat_bottomup::min_time(cd) {
        Ok(front) => front,
        Err(_) => cdat_enumerative::min_time(cd, true),
    };
    front.entries().first().cloned()
}

/// Maximal single-attack success probability of any cdp-AT: `AND`
/// multiplies child probabilities, `OR` takes the likelier child (the
/// Viterbi semiring, [`cdat_pareto::MaxProb`]) — the likeliest *single*
/// attack, unlike [`cedpf`]'s combinators which let the attacker attempt
/// several alternatives. The returned entry carries the probability in its
/// cost slot (damage 0) and a witness attack achieving it.
///
/// Treelike trees run the bottom-up kernel; DAG-like trees fall back to
/// exact enumeration (shared BASs succeed once, so their probability is
/// multiplied once).
///
/// # Panics
///
/// Panics on DAG-like trees with more than
/// [`cdat_enumerative::MAX_ENUM_BAS`] BASs (the batch engine returns a
/// clean error instead).
pub fn max_prob(cdp: &CdpAttackTree) -> Option<FrontEntry> {
    let front = match cdat_bottomup::max_prob(cdp) {
        Ok(front) => front,
        Err(_) => cdat_enumerative::max_prob(cdp, true),
    };
    front.entries().first().cloned()
}

/// Exact CEDPF for **any** cdp-AT, exponential on DAG-like trees (extension
/// beyond the paper: BDD-exact per-attack expected damage).
///
/// # Panics
///
/// Panics on DAG-like trees with more than 25 BASs, where the fallback is
/// intractable.
pub fn cedpf_exhaustive(cdp: &CdpAttackTree) -> ParetoFront {
    match cdat_bottomup::cedpf(cdp) {
        Ok(front) => front,
        Err(_) => cdat_enumerative::cedpf_dag(cdp, true),
    }
}

/// Solves a batch of requests on `workers` threads, deduplicating
/// structurally identical trees and memoizing fronts for the duration of
/// the batch (one-shot facade over [`Engine`]; keep an [`Engine`] when the
/// cache should persist across batches).
///
/// Results are deterministic — responses and cache-hit flags do not depend
/// on `workers`. Witness attacks are available per request via
/// [`BatchRequest::with_witnesses`], translated into each requesting
/// tree's own BAS numbering even when the answer comes from a cached
/// front of a renamed/reordered copy; see [`cdat_engine`] for the
/// guarantees.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cdat::solve::{batch, BatchRequest, Query, Response};
///
/// let tree = Arc::new(cdat_models::factory_cdp());
/// let requests: Vec<BatchRequest> =
///     (0..=5).map(|b| BatchRequest::new(tree.clone(), Query::Dgc(b as f64))).collect();
/// let results = batch(&requests, 4);
/// assert_eq!(results.iter().filter(|r| r.cache_hit).count(), 5, "one front, six answers");
/// assert!(matches!(&results[2].response, Response::Entry(Some(e)) if e.point.damage == 200.0));
/// ```
pub fn batch(requests: &[BatchRequest], workers: usize) -> Vec<BatchResult> {
    Engine::new(workers).run(requests)
}
