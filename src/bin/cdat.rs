//! `cdat` — command-line cost-damage analysis of attack trees.
//!
//! ```text
//! cdat info    <tree.cdat>              shape, sizes, attribute summary
//! cdat cdpf    <tree.cdat>              cost-damage Pareto front (+witnesses)
//! cdat cedpf   <tree.cdat>              cost-expected-damage front (treelike)
//! cdat dgc     <tree.cdat> <budget>     max damage within a cost budget
//! cdat cgd     <tree.cdat> <threshold>  min cost reaching a damage threshold
//! cdat minimal <tree.cdat>              minimal successful attacks
//! cdat rank    <tree.cdat> <budget>     best single-BAS defenses
//! cdat dot     <tree.cdat>              Graphviz export (stdout)
//! cdat example                          print a sample document
//! ```
//!
//! Documents use the `cdat-format` text format; see `cdat example`.

use std::process::ExitCode;

use cdat::{solve, CdpAttackTree, FrontEntry, ParetoFront};

const EXAMPLE: &str = r#"# cdat attack-tree document (the paper's running example).
# <kind> <name> [cost=..] [damage=..] [prob=..]; children indented below;
# `ref <name>` shares an already-declared node (DAG-like trees).
or "production shutdown" damage=200
  bas cyberattack cost=1 prob=0.2
  and "destroy robot" damage=100
    bas "place bomb" cost=3 prob=0.4
    bas "force door" cost=2 damage=10 prob=0.9
"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", usage());
        return Ok(());
    }
    if command == "example" {
        print!("{EXAMPLE}");
        return Ok(());
    }
    let path = args.get(1).ok_or_else(|| format!("missing file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cdp = cdat_format::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let number = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or_else(|| format!("missing {what} argument"))?
            .parse()
            .map_err(|_| format!("{what} must be a number"))
    };

    match command {
        "info" => info(&cdp),
        "cdpf" => print_front(&cdp, &solve::cdpf(cdp.cd())),
        "cedpf" => {
            let front = solve::cedpf(&cdp).map_err(|e| e.to_string())?;
            print_front(&cdp, &front);
        }
        "dgc" => {
            let budget = number(2, "budget")?;
            match solve::dgc(cdp.cd(), budget) {
                Some(e) => print_entry(&cdp, &e, "max damage"),
                None => println!("no attack fits the budget (budget is negative)"),
            }
        }
        "cgd" => {
            let threshold = number(2, "threshold")?;
            match solve::cgd(cdp.cd(), threshold) {
                Some(e) => print_entry(&cdp, &e, "min cost"),
                None => println!("unreachable: maximal damage is {}", cdp.cd().max_damage()),
            }
        }
        "minimal" => {
            let attacks = cdat_analysis::minimal_attacks(cdp.tree());
            println!("{} minimal successful attacks:", attacks.len());
            for a in attacks {
                println!(
                    "  cost {:>8}  {}",
                    cdp.cd().cost_of(&a),
                    attack_names(&cdp, &a).join(", ")
                );
            }
        }
        "rank" => {
            let budget = number(2, "budget")?;
            let undefended = solve::dgc(cdp.cd(), budget).map(|e| e.point.damage).unwrap_or(0.0);
            println!("undefended damage within budget {budget}: {undefended}");
            println!("single-BAS defenses, best first:");
            for e in cdat_analysis::rank_single_defenses(cdp.cd(), budget) {
                println!(
                    "  defend {:<40} residual damage {:>8} (max {:>8})",
                    e.name, e.residual_damage, e.residual_max_damage
                );
            }
        }
        "dot" => print!("{}", cdat::core::to_dot_cdp(&cdp)),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    }
    Ok(())
}

fn usage() -> String {
    let mut s = String::from("usage: cdat <command> <tree.cdat> [args]\n\ncommands:\n");
    for (cmd, help) in [
        ("info    <file>", "shape, sizes, attribute summary"),
        ("cdpf    <file>", "cost-damage Pareto front with witness attacks"),
        ("cedpf   <file>", "cost-expected-damage front (treelike trees)"),
        ("dgc     <file> <budget>", "max damage within a cost budget"),
        ("cgd     <file> <threshold>", "min cost reaching a damage threshold"),
        ("minimal <file>", "minimal successful attacks"),
        ("rank    <file> <budget>", "rank single-BAS defenses by residual damage"),
        ("dot     <file>", "Graphviz export"),
        ("example", "print a sample document"),
    ] {
        s.push_str(&format!("  {cmd:<28} {help}\n"));
    }
    s
}

fn info(cdp: &CdpAttackTree) {
    let t = cdp.tree();
    println!("root:      {}", t.name(t.root()));
    println!("nodes:     {}", t.node_count());
    println!("BASs:      {}", t.bas_count());
    println!("shape:     {}", if t.is_treelike() { "treelike" } else { "DAG-like" });
    println!("max damage: {}", cdp.cd().max_damage());
    println!("total cost: {}", cdp.cd().total_cost());
    let probabilistic = cdp.probs().iter().any(|&p| p != 1.0);
    println!("probabilistic attributes: {}", if probabilistic { "yes" } else { "no" });
    println!("solver for CDPF: {:?}", solve::backend_for(cdp.cd()));
}

fn attack_names(cdp: &CdpAttackTree, attack: &cdat::Attack) -> Vec<String> {
    attack.iter().map(|b| cdp.tree().name(cdp.tree().node_of_bas(b)).to_owned()).collect()
}

fn print_front(cdp: &CdpAttackTree, front: &ParetoFront) {
    println!("{} Pareto-optimal points:", front.len());
    println!("{:>10} {:>12} {:>4}  attack", "cost", "damage", "top");
    for e in front.entries() {
        match &e.witness {
            Some(w) => println!(
                "{:>10} {:>12} {:>4}  {}",
                e.point.cost,
                trim(e.point.damage),
                if cdp.tree().reaches_root(w) { "y" } else { "n" },
                attack_names(cdp, w).join(", ")
            ),
            None => println!("{:>10} {:>12}    ?", e.point.cost, trim(e.point.damage)),
        }
    }
}

fn print_entry(cdp: &CdpAttackTree, e: &FrontEntry, label: &str) {
    println!("{label}: cost {} damage {}", e.point.cost, trim(e.point.damage));
    if let Some(w) = &e.witness {
        println!("attack: {}", attack_names(cdp, w).join(", "));
        println!("reaches top: {}", if cdp.tree().reaches_root(w) { "yes" } else { "no" });
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v:.6}");
    s.trim_end_matches('0').trim_end_matches('.').to_owned()
}
