//! `cdat` — command-line cost-damage analysis of attack trees.
//!
//! ```text
//! cdat info    <tree.cdat>              shape, sizes, attribute summary
//! cdat cdpf    <tree.cdat>              cost-damage Pareto front (+witnesses)
//! cdat cedpf   <tree.cdat>              cost-expected-damage front (treelike)
//! cdat dgc     <tree.cdat> <budget>     max damage within a cost budget
//! cdat cgd     <tree.cdat> <threshold>  min cost reaching a damage threshold
//! cdat minimal <tree.cdat>              minimal successful attacks
//! cdat rank    <tree.cdat> <budget>     best single-BAS defenses
//! cdat dot     <tree.cdat>              Graphviz export (stdout)
//! cdat batch   <suite.cdat> [flags]     parallel batch solve (JSON lines)
//! cdat example                          print a sample document
//! ```
//!
//! Documents use the `cdat-format` text format; see `cdat example`. `batch`
//! reads a multi-document suite (`---`-separated trees), fans the requested
//! queries over a worker pool with a memoizing front cache, and writes one
//! JSON object per request to stdout — byte-identical output whatever
//! `--workers` says (timings only appear under `--timings`).

use std::process::ExitCode;

use cdat::{solve, CdpAttackTree, FrontEntry, ParetoFront};

const EXAMPLE: &str = r#"# cdat attack-tree document (the paper's running example).
# <kind> <name> [cost=..] [damage=..] [prob=..]; children indented below;
# `ref <name>` shares an already-declared node (DAG-like trees).
or "production shutdown" damage=200
  bas cyberattack cost=1 prob=0.2
  and "destroy robot" damage=100
    bas "place bomb" cost=3 prob=0.4
    bas "force door" cost=2 damage=10 prob=0.9
"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", usage());
        return Ok(());
    }
    if command == "example" {
        print!("{EXAMPLE}");
        return Ok(());
    }
    if command == "batch" {
        return batch(&args[1..]);
    }
    let path = args.get(1).ok_or_else(|| format!("missing file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cdp = cdat_format::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let number = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or_else(|| format!("missing {what} argument"))?
            .parse()
            .map_err(|_| format!("{what} must be a number"))
    };

    match command {
        "info" => info(&cdp),
        "cdpf" => print_front(&cdp, &solve::cdpf(cdp.cd())),
        "cedpf" => {
            let front = solve::cedpf(&cdp).map_err(|e| e.to_string())?;
            print_front(&cdp, &front);
        }
        "dgc" => {
            let budget = number(2, "budget")?;
            match solve::dgc(cdp.cd(), budget) {
                Some(e) => print_entry(&cdp, &e, "max damage"),
                None => println!("no attack fits the budget (budget is negative)"),
            }
        }
        "cgd" => {
            let threshold = number(2, "threshold")?;
            match solve::cgd(cdp.cd(), threshold) {
                Some(e) => print_entry(&cdp, &e, "min cost"),
                None => println!("unreachable: maximal damage is {}", cdp.cd().max_damage()),
            }
        }
        "minimal" => {
            let attacks = cdat_analysis::minimal_attacks(cdp.tree());
            println!("{} minimal successful attacks:", attacks.len());
            for a in attacks {
                println!(
                    "  cost {:>8}  {}",
                    cdp.cd().cost_of(&a),
                    attack_names(&cdp, &a).join(", ")
                );
            }
        }
        "rank" => {
            let budget = number(2, "budget")?;
            let undefended = solve::dgc(cdp.cd(), budget)
                .map(|e| e.point.damage)
                .ok_or_else(|| format!("budget must be nonnegative, got {budget}"))?;
            println!("undefended damage within budget {budget}: {undefended}");
            println!("single-BAS defenses, best first:");
            for e in cdat_analysis::rank_single_defenses(cdp.cd(), budget) {
                println!(
                    "  defend {:<40} residual damage {:>8} (max {:>8})",
                    e.name, e.residual_damage, e.residual_max_damage
                );
            }
        }
        "dot" => print!("{}", cdat::core::to_dot_cdp(&cdp)),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    }
    Ok(())
}

fn usage() -> String {
    let mut s = String::from("usage: cdat <command> <tree.cdat> [args]\n\ncommands:\n");
    for (cmd, help) in [
        ("info    <file>", "shape, sizes, attribute summary"),
        ("cdpf    <file>", "cost-damage Pareto front with witness attacks"),
        ("cedpf   <file>", "cost-expected-damage front (treelike trees)"),
        ("dgc     <file> <budget>", "max damage within a cost budget"),
        ("cgd     <file> <threshold>", "min cost reaching a damage threshold"),
        ("minimal <file>", "minimal successful attacks"),
        ("rank    <file> <budget>", "rank single-BAS defenses by residual damage"),
        ("dot     <file>", "Graphviz export"),
        ("batch   <suite> [flags]", "parallel batch solve of a multi-tree suite"),
        ("example", "print a sample document"),
    ] {
        s.push_str(&format!("  {cmd:<28} {help}\n"));
    }
    s.push_str(
        "\nbatch flags:\n  \
         --workers N   worker threads (default: available parallelism)\n  \
         --timings     add per-request solver micros to the JSON (nondeterministic)\n  \
         --cdpf --cedpf --dgc B --cgd D --edgc B --cged D\n                \
         queries to run per document, repeatable (default: --cdpf)\n",
    );
    s
}

/// `cdat batch <suite> [flags]`: solve every (document × query) request on
/// a worker pool, one JSON object per line on stdout, summary on stderr.
fn batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(|| format!("missing suite file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let documents = cdat_format::parse_multi(&text).map_err(|e| format!("{path}: {e}"))?;

    let mut workers: Option<usize> = None;
    let mut timings = false;
    let mut queries: Vec<solve::Query> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<f64, String> {
            let v: f64 = it
                .next()
                .ok_or_else(|| format!("{flag} needs a {what}"))?
                .parse()
                .map_err(|_| format!("{flag}: {what} must be a number"))?;
            // f64::parse accepts "inf"/"NaN", which would render as invalid
            // JSON; queries only make sense for finite values anyway.
            if !v.is_finite() {
                return Err(format!("{flag}: {what} must be finite"));
            }
            Ok(v)
        };
        match flag.as_str() {
            "--workers" => {
                let n = value("count")?;
                if n < 1.0 || n.fract() != 0.0 {
                    return Err("--workers: count must be a positive integer".into());
                }
                workers = Some(n as usize);
            }
            "--timings" => timings = true,
            "--cdpf" => queries.push(solve::Query::Cdpf),
            "--cedpf" => queries.push(solve::Query::Cedpf),
            "--dgc" => queries.push(solve::Query::Dgc(value("budget")?)),
            "--cgd" => queries.push(solve::Query::Cgd(value("threshold")?)),
            "--edgc" => queries.push(solve::Query::Edgc(value("budget")?)),
            "--cged" => queries.push(solve::Query::Cged(value("threshold")?)),
            other => return Err(format!("unknown batch flag {other:?}\n{}", usage())),
        }
    }
    if queries.is_empty() {
        queries.push(solve::Query::Cdpf);
    }
    let workers = workers
        .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1));

    let trees: Vec<std::sync::Arc<CdpAttackTree>> =
        documents.iter().map(|d| std::sync::Arc::new(d.tree.clone())).collect();
    let mut requests = Vec::with_capacity(documents.len() * queries.len());
    for tree in &trees {
        for &query in &queries {
            requests.push(solve::BatchRequest::new(tree.clone(), query));
        }
    }

    let engine = solve::Engine::new(workers);
    let start = std::time::Instant::now();
    let results = engine.run(&requests);
    let wall = start.elapsed();

    let mut out = String::new();
    for (i, result) in results.iter().enumerate() {
        let doc = i / queries.len();
        out.push_str(&render_result(
            doc,
            documents[doc].name.as_deref(),
            &requests[i],
            result,
            timings,
        ));
        out.push('\n');
    }
    print!("{out}");

    let stats = engine.cache().stats();
    eprintln!(
        "batch: {} requests over {} documents, {} fronts computed, {} cache hits, {} workers, {:.3}s",
        results.len(),
        documents.len(),
        stats.entries,
        results.iter().filter(|r| r.cache_hit).count(),
        workers,
        wall.as_secs_f64()
    );
    Ok(())
}

/// Renders one batch result as a single JSON object (no trailing newline).
fn render_result(
    doc: usize,
    name: Option<&str>,
    request: &solve::BatchRequest,
    result: &solve::BatchResult,
    timings: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"doc\":{doc}");
    if let Some(name) = name {
        let _ = write!(s, ",\"name\":\"{}\"", json_escape(name));
    }
    let (query, arg) = match request.query {
        solve::Query::Cdpf => ("cdpf", None),
        solve::Query::Cedpf => ("cedpf", None),
        solve::Query::Dgc(b) => ("dgc", Some(b)),
        solve::Query::Cgd(t) => ("cgd", Some(t)),
        solve::Query::Edgc(b) => ("edgc", Some(b)),
        solve::Query::Cged(t) => ("cged", Some(t)),
    };
    let _ = write!(s, ",\"query\":\"{query}\"");
    if let Some(arg) = arg {
        let _ = write!(s, ",\"arg\":{}", json_num(arg));
    }
    let _ = write!(s, ",\"cache\":\"{}\"", if result.cache_hit { "hit" } else { "miss" });
    match &result.response {
        solve::Response::Front(front) => {
            s.push_str(",\"front\":[");
            for (i, p) in front.points().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{},{}]", json_num(p.cost), json_num(p.damage));
            }
            s.push(']');
        }
        solve::Response::Entry(Some(p)) => {
            let _ = write!(s, ",\"point\":[{},{}]", json_num(p.cost), json_num(p.damage));
        }
        solve::Response::Entry(None) => s.push_str(",\"point\":null"),
        solve::Response::Error(message) => {
            let _ = write!(s, ",\"error\":\"{}\"", json_escape(message));
        }
    }
    if timings {
        let _ = write!(s, ",\"micros\":{}", result.compute.as_micros());
    }
    s.push('}');
    s
}

/// JSON-compatible rendering of a finite attribute value (Rust's `Display`
/// for `f64` never produces exponents, infinities or NaN here — attributes
/// are validated finite).
fn json_num(v: f64) -> String {
    format!("{v}")
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn info(cdp: &CdpAttackTree) {
    let t = cdp.tree();
    println!("root:      {}", t.name(t.root()));
    println!("nodes:     {}", t.node_count());
    println!("BASs:      {}", t.bas_count());
    println!("shape:     {}", if t.is_treelike() { "treelike" } else { "DAG-like" });
    println!("max damage: {}", cdp.cd().max_damage());
    println!("total cost: {}", cdp.cd().total_cost());
    let probabilistic = cdp.probs().iter().any(|&p| p != 1.0);
    println!("probabilistic attributes: {}", if probabilistic { "yes" } else { "no" });
    println!("solver for CDPF: {:?}", solve::backend_for(cdp.cd()));
}

fn attack_names(cdp: &CdpAttackTree, attack: &cdat::Attack) -> Vec<String> {
    attack.iter().map(|b| cdp.tree().name(cdp.tree().node_of_bas(b)).to_owned()).collect()
}

fn print_front(cdp: &CdpAttackTree, front: &ParetoFront) {
    println!("{} Pareto-optimal points:", front.len());
    println!("{:>10} {:>12} {:>4}  attack", "cost", "damage", "top");
    for e in front.entries() {
        match &e.witness {
            Some(w) => println!(
                "{:>10} {:>12} {:>4}  {}",
                e.point.cost,
                trim(e.point.damage),
                if cdp.tree().reaches_root(w) { "y" } else { "n" },
                attack_names(cdp, w).join(", ")
            ),
            None => println!("{:>10} {:>12}    ?", e.point.cost, trim(e.point.damage)),
        }
    }
}

fn print_entry(cdp: &CdpAttackTree, e: &FrontEntry, label: &str) {
    println!("{label}: cost {} damage {}", e.point.cost, trim(e.point.damage));
    if let Some(w) = &e.witness {
        println!("attack: {}", attack_names(cdp, w).join(", "));
        println!("reaches top: {}", if cdp.tree().reaches_root(w) { "yes" } else { "no" });
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v:.6}");
    s.trim_end_matches('0').trim_end_matches('.').to_owned()
}
