//! `cdat` — command-line cost-damage analysis of attack trees.
//!
//! ```text
//! cdat info    <tree.cdat>              shape, sizes, attribute summary
//! cdat cdpf    <tree.cdat>              cost-damage Pareto front (+witnesses)
//! cdat cedpf   <tree.cdat>              cost-expected-damage front (treelike)
//! cdat dgc     <tree.cdat> <budget>     max damage within a cost budget
//! cdat cgd     <tree.cdat> <threshold>  min cost reaching a damage threshold
//! cdat minimal <tree.cdat>              minimal successful attacks
//! cdat rank    <tree.cdat> <budget>     best single-BAS defenses
//! cdat dot     <tree.cdat>              Graphviz export (stdout)
//! cdat batch   <suite.cdat> [flags]     parallel batch solve (JSON lines)
//! cdat whatif  <tree.cdat> [edits]      incremental solve of a patched variant
//! cdat serve   [flags]                  long-running query server (stdio/TCP)
//! cdat query   --connect <addr> <suite> client for a running `cdat serve`
//! cdat gen     [flags]                  print a generated DAG-heavy suite
//! cdat example                          print a sample document
//! ```
//!
//! Documents use the `cdat-format` text format; see `cdat example`. `batch`
//! reads a multi-document suite (`---`-separated trees), fans the requested
//! queries over a worker pool with a memoizing front cache, and writes one
//! JSON object per request to stdout — byte-identical output whatever
//! `--workers` says (timings only appear under `--timings`). `--witnesses`
//! adds witness attacks as BAS-id arrays in each document's own numbering,
//! translated from the shared cache entry when documents deduplicate.
//! `serve` keeps the same engine warm behind a micro-batching,
//! shard-by-hash JSON-lines protocol (`cdat::serve`); its responses carry
//! the same bytes as `batch`, witnesses included. `whatif` solves one
//! patched variant of a tree through the incremental what-if engine (only
//! nodes on dirty root paths recompute; answers stay byte-identical to
//! scratch solves), and `query --sweep` streams a whole patch list the
//! same way — locally or against a running server.

use std::process::ExitCode;
use std::time::Duration;

use cdat::serve::{protocol, ServeConfig};
use cdat::{format::json, solve, CdpAttackTree, FrontEntry, ParetoFront};

const EXAMPLE: &str = r#"# cdat attack-tree document (the paper's running example).
# <kind> <name> [cost=..] [damage=..] [prob=..]; children indented below;
# `ref <name>` shares an already-declared node (DAG-like trees).
or "production shutdown" damage=200
  bas cyberattack cost=1 prob=0.2
  and "destroy robot" damage=100
    bas "place bomb" cost=3 prob=0.4
    bas "force door" cost=2 damage=10 prob=0.9
"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", usage());
        return Ok(());
    }
    if command == "example" {
        print!("{EXAMPLE}");
        return Ok(());
    }
    if command == "gen" {
        return gen(&args[1..]);
    }
    if command == "batch" {
        return batch(&args[1..]);
    }
    if command == "whatif" {
        return whatif(&args[1..]);
    }
    if command == "serve" {
        return serve(&args[1..]);
    }
    if command == "query" {
        return query(&args[1..]);
    }
    let path = args.get(1).ok_or_else(|| format!("missing file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cdp = cdat_format::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let number = |i: usize, what: &str| -> Result<f64, String> {
        args.get(i)
            .ok_or_else(|| format!("missing {what} argument"))?
            .parse()
            .map_err(|_| format!("{what} must be a number"))
    };

    match command {
        "info" => info(&cdp),
        "cdpf" => print_front(&cdp, &solve::cdpf(cdp.cd())),
        "cedpf" => {
            let front = solve::cedpf(&cdp).map_err(|e| e.to_string())?;
            print_front(&cdp, &front);
        }
        "dgc" => {
            let budget = number(2, "budget")?;
            match solve::dgc(cdp.cd(), budget) {
                Some(e) => print_entry(&cdp, &e, "max damage"),
                None => println!("no attack fits the budget (budget is negative)"),
            }
        }
        "cgd" => {
            let threshold = number(2, "threshold")?;
            match solve::cgd(cdp.cd(), threshold) {
                Some(e) => print_entry(&cdp, &e, "min cost"),
                None => println!("unreachable: maximal damage is {}", cdp.cd().max_damage()),
            }
        }
        "minimal" => {
            let attacks = cdat_analysis::minimal_attacks(cdp.tree());
            println!("{} minimal successful attacks:", attacks.len());
            for a in attacks {
                println!(
                    "  cost {:>8}  {}",
                    cdp.cd().cost_of(&a),
                    attack_names(&cdp, &a).join(", ")
                );
            }
        }
        "rank" => {
            let budget = number(2, "budget")?;
            let undefended = solve::dgc(cdp.cd(), budget)
                .map(|e| e.point.damage)
                .ok_or_else(|| format!("budget must be nonnegative, got {budget}"))?;
            println!("undefended damage within budget {budget}: {undefended}");
            println!("single-BAS defenses, best first:");
            for e in cdat_analysis::rank_single_defenses(cdp.cd(), budget) {
                println!(
                    "  defend {:<40} residual damage {:>8} (max {:>8})",
                    e.name, e.residual_damage, e.residual_max_damage
                );
            }
        }
        "dot" => print!("{}", cdat::core::to_dot_cdp(&cdp)),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    }
    Ok(())
}

fn usage() -> String {
    let mut s = String::from("usage: cdat <command> <tree.cdat> [args]\n\ncommands:\n");
    for (cmd, help) in [
        ("info    <file>", "shape, sizes, attribute summary"),
        ("cdpf    <file>", "cost-damage Pareto front with witness attacks"),
        ("cedpf   <file>", "cost-expected-damage front (treelike trees)"),
        ("dgc     <file> <budget>", "max damage within a cost budget"),
        ("cgd     <file> <threshold>", "min cost reaching a damage threshold"),
        ("minimal <file>", "minimal successful attacks"),
        ("rank    <file> <budget>", "rank single-BAS defenses by residual damage"),
        ("dot     <file>", "Graphviz export"),
        ("batch   <suite> [flags]", "parallel batch solve of a multi-tree suite"),
        ("whatif  <file> [edits] [query]", "incremental solve of a patched variant"),
        ("serve   [flags]", "long-running micro-batching query server"),
        ("query   --connect <addr> <suite> [flags]", "client for a running serve"),
        ("gen     [flags]", "print a generated DAG-heavy suite (deterministic)"),
        ("example", "print a sample document"),
    ] {
        s.push_str(&format!("  {cmd:<28} {help}\n"));
    }
    s.push_str(
        "\nbatch flags:\n  \
         --workers N        worker threads (default: available parallelism)\n  \
         --witnesses        include witness attacks (BAS-id arrays in each\n                     \
         document's own numbering, translated from the\n                     \
         shared cache entry when documents deduplicate)\n  \
         --timings          add per-request solver micros (this run) and\n                     \
         compute_us (the answering front's original solve\n                     \
         cost) to the JSON (nondeterministic)\n  \
         --cache-budget P   bound the front cache to P points (LRU eviction)\n  \
         --cache-stats      print cache counters (hits/misses/evictions,\n                     \
         disk_hits/disk_entries) to stderr\n  \
         --metrics          print Prometheus-style metrics (counters, latency\n                     \
         histograms) to stderr after the batch\n  \
         --trace PATH       append one JSONL span event per request stage\n                     \
         (parse, canonicalize, cache_lookup, solve,\n                     \
         store_append) to PATH\n  \
         --store PATH       persistent front store below the cache: misses read\n                     \
         through to PATH, computed fronts append to it, so a\n                     \
         second run on the same store starts warm\n  \
         --solver S         pin every request to one solver backend: auto\n                     \
         (default; treelike trees bottom-up, DAGs BDD-fused),\n                     \
         bottomup, bdd, enumerative or bilp — incompatible\n                     \
         hints answer as per-request errors, and all backends\n                     \
         return the same front (hints share cache entries)\n  \
         --cdpf --cedpf --dgc B --cgd D --edgc B --cged D --min-time --max-prob\n                     \
         queries to run per document, repeatable (default: --cdpf)\n\
         \nwhatif edits (repeatable; the answer is byte-identical to solving the\n\
         patched tree from scratch, but only dirty root-path nodes recompute):\n  \
         --set cost:NAME=V  override a BAS cost (likewise prob:NAME=V for a BAS\n                     \
         probability, damage:NAME=V for any node's damage)\n  \
         --gate NAME=and|or swap a gate's type\n  \
         --defend NAME      remove a BAS (the defender disables it)\n  \
         plus at most one query flag (default: --cdpf) and --witnesses\n\
         \nserve flags:\n  \
         --stdio            serve stdin→stdout, exit at EOF (default)\n  \
         --addr HOST:PORT   serve TCP connections (port 0 picks one; the\n                     \
         chosen address is announced on stderr)\n  \
         --workers N        worker shards (default: available parallelism)\n  \
         --batch-max N      flush a micro-batch at N requests (default 64)\n  \
         --batch-window-us U  micro-batch accumulation window (default 1000)\n  \
         --cache-budget P   total front-cache budget in points, split over shards\n  \
         --trace PATH       append one JSONL span event per request stage to PATH\n  \
         --store PATH       persistent front store shared by the shards; a\n                     \
         restarted server on the same PATH starts warm\n\
         \nquery flags: --connect HOST:PORT plus the batch query flags,\n  \
         --solver, --witnesses and --metrics (scrapes the server's metrics op to\n  \
         stderr); sends the suite to a running `cdat serve` and prints\n  \
         responses in request order. With --store PATH instead of --connect,\n  \
         answers locally through the store (no server needed), printing the\n  \
         same response lines a server on that store would. With --sweep\n  \
         PATCHES.jsonl (one patch object per line, the sweep op's wire shape)\n  \
         the suite must hold one tree; every patch variant streams back as its\n  \
         own response line through the incremental what-if engine — over\n  \
         --connect, through --store, or memory-only when neither is given.\n\
         \ngen flags (same flags, same bytes — the suite is deterministic):\n  \
         --count N          documents in the suite (default 8)\n  \
         --bas N            BASs per tree (default 12)\n  \
         --sharing S        fraction of extra shared `ref` edges, in [0, 1]\n                     \
         (default 0.5; anything above 0 yields DAGs)\n  \
         --density D        fraction of nodes carrying damage, in [0, 1]\n                     \
         (default 1; sparse damage keeps 100+-BAS suites\n                     \
         inside the fused solver's diagram budget)\n  \
         --seed X           generator seed (default 7)\n",
    );
    s
}

/// Parses the query flags shared by `batch` and `query` (`--cdpf`,
/// `--dgc B`, ...); unrecognized flags are returned for the caller.
fn parse_query_flags(args: &[String]) -> Result<(Vec<solve::Query>, Vec<&String>), String> {
    let mut queries = Vec::new();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<f64, String> {
            let v: f64 = it
                .next()
                .ok_or_else(|| format!("{flag} needs a {what}"))?
                .parse()
                .map_err(|_| format!("{flag}: {what} must be a number"))?;
            // f64::parse accepts "inf"/"NaN", which would render as invalid
            // JSON; queries only make sense for finite values anyway.
            if !v.is_finite() {
                return Err(format!("{flag}: {what} must be finite"));
            }
            Ok(v)
        };
        match flag.as_str() {
            "--cdpf" => queries.push(solve::Query::Cdpf),
            "--cedpf" => queries.push(solve::Query::Cedpf),
            "--dgc" => queries.push(solve::Query::Dgc(value("budget")?)),
            "--cgd" => queries.push(solve::Query::Cgd(value("threshold")?)),
            "--edgc" => queries.push(solve::Query::Edgc(value("budget")?)),
            "--cged" => queries.push(solve::Query::Cged(value("threshold")?)),
            "--min-time" => queries.push(solve::Query::MinTime),
            "--max-prob" => queries.push(solve::Query::MaxProb),
            _ => rest.push(flag),
        }
    }
    Ok((queries, rest))
}

/// Parses the value of a `--flag N` pair out of the non-query flags.
fn take_value<'a>(rest: &mut Vec<&'a String>, flag: &str) -> Result<Option<&'a String>, String> {
    match rest.iter().position(|f| f.as_str() == flag) {
        None => Ok(None),
        Some(i) if i + 1 < rest.len() => {
            rest.remove(i);
            Ok(Some(rest.remove(i)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

/// Parses a nonnegative integer flag value.
fn parse_count(flag: &str, text: &str) -> Result<usize, String> {
    text.parse().map_err(|_| format!("{flag}: expected a nonnegative integer, got {text:?}"))
}

/// `cdat gen [flags]`: print a deterministic DAG-heavy multi-document
/// suite on stdout — the generator behind the `dag_cdpf_*` bench
/// scenarios, exposed so scripts (the CI dag-smoke, ad-hoc load tests)
/// can materialize reproducible DAG workloads without checked-in
/// fixtures. Same flags, same bytes.
fn gen(args: &[String]) -> Result<(), String> {
    let mut rest: Vec<&String> = args.iter().collect();
    let fraction = |flag: &str, text: &str| -> Result<f64, String> {
        let v: f64 = text
            .parse()
            .map_err(|_| format!("{flag}: expected a number in [0, 1], got {text:?}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{flag}: expected a number in [0, 1], got {text:?}"));
        }
        Ok(v)
    };
    let count = match take_value(&mut rest, "--count")? {
        Some(text) => parse_count("--count", text)?,
        None => 8,
    };
    let bas = match take_value(&mut rest, "--bas")? {
        Some(text) => parse_count("--bas", text)?,
        None => 12,
    };
    let sharing = match take_value(&mut rest, "--sharing")? {
        Some(text) => fraction("--sharing", text)?,
        None => 0.5,
    };
    let density = match take_value(&mut rest, "--density")? {
        Some(text) => fraction("--density", text)?,
        None => 1.0,
    };
    let seed = match take_value(&mut rest, "--seed")? {
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| format!("--seed: expected a nonnegative integer, got {text:?}"))?,
        None => 7,
    };
    if let Some(flag) = rest.first() {
        return Err(format!("unknown gen flag {flag:?}\n{}", usage()));
    }
    if bas == 0 {
        return Err("--bas: count must be a positive integer".into());
    }
    let suite = cdat::gen::decorated_dag_suite(count, bas, sharing, density, seed);
    let names: Vec<String> = (0..suite.len()).map(|i| format!("dag{i}")).collect();
    print!(
        "{}",
        cdat_format::write_multi(
            suite.iter().enumerate().map(|(i, tree)| (Some(names[i].as_str()), tree))
        )
    );
    Ok(())
}

/// `cdat batch <suite> [flags]`: solve every (document × query) request on
/// a worker pool, one JSON object per line on stdout, summary on stderr.
fn batch(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(|| format!("missing suite file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parse_started = std::time::Instant::now();
    let documents = cdat_format::parse_multi(&text).map_err(|e| format!("{path}: {e}"))?;
    let parse_time = parse_started.elapsed();

    let (mut queries, mut rest) = parse_query_flags(&args[1..])?;
    let workers = match take_value(&mut rest, "--workers")? {
        Some(text) => {
            let n = parse_count("--workers", text)?;
            if n == 0 {
                return Err("--workers: count must be a positive integer".into());
            }
            n
        }
        None => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    };
    let cache_budget = take_value(&mut rest, "--cache-budget")?
        .map(|text| parse_count("--cache-budget", text))
        .transpose()?;
    let store = take_value(&mut rest, "--store")?.cloned();
    let hint = match take_value(&mut rest, "--solver")? {
        Some(solver) => solve::SolverHint::parse(solver)?,
        None => solve::SolverHint::Auto,
    };
    let trace = open_trace(take_value(&mut rest, "--trace")?)?;
    let mut timings = false;
    let mut cache_stats = false;
    let mut witnesses = false;
    let mut metrics_dump = false;
    for flag in rest {
        match flag.as_str() {
            "--timings" => timings = true,
            "--cache-stats" => cache_stats = true,
            "--witnesses" => witnesses = true,
            "--metrics" => metrics_dump = true,
            other => return Err(format!("unknown batch flag {other:?}\n{}", usage())),
        }
    }
    if queries.is_empty() {
        queries.push(solve::Query::Cdpf);
    }

    let trees: Vec<std::sync::Arc<CdpAttackTree>> =
        documents.iter().map(|d| std::sync::Arc::new(d.tree.clone())).collect();
    let mut requests = Vec::with_capacity(documents.len() * queries.len());
    for tree in &trees {
        for &query in &queries {
            requests.push(
                solve::BatchRequest::new(tree.clone(), query)
                    .with_hint(hint)
                    .with_witnesses(witnesses),
            );
        }
    }

    let memory = match cache_budget {
        Some(budget) => solve::FrontCache::with_budget(16, budget),
        None => solve::FrontCache::new(16),
    };
    let mut engine = match &store {
        Some(path) => {
            let persistent = solve::PersistentFrontCache::open(path, memory)
                .map_err(|e| format!("cannot open store {path}: {e}"))?;
            solve::Engine::with_persistent(workers, persistent)
        }
        None => solve::Engine::with_cache(workers, memory),
    };
    engine = engine.with_metrics(std::sync::Arc::new(solve::EngineMetrics::new()));
    if let Some(trace) = &trace {
        trace.emit(
            "parse",
            parse_time,
            &[("docs", cdat::obs::TraceField::U64(documents.len() as u64))],
        );
        engine = engine.with_trace(trace.clone());
    }
    let start = std::time::Instant::now();
    let results = engine.run(&requests);
    let wall = start.elapsed();

    let mut out = String::new();
    for (i, result) in results.iter().enumerate() {
        let doc = i / queries.len();
        out.push_str(&render_result(
            doc,
            documents[doc].name.as_deref(),
            &requests[i],
            result,
            timings,
        ));
        out.push('\n');
    }
    print!("{out}");

    let stats = engine.stats();
    eprintln!(
        "batch: {} requests over {} documents, {} fronts computed, {} cache hits, {} workers, {:.3}s",
        results.len(),
        documents.len(),
        stats.entries,
        results.iter().filter(|r| r.cache_hit).count(),
        workers,
        wall.as_secs_f64()
    );
    if cache_stats {
        eprintln!(
            "cache-stats: hits={} misses={} entries={} points={} evictions={} disk_hits={} disk_entries={}",
            stats.hits,
            stats.misses,
            stats.entries,
            stats.points,
            stats.evictions,
            stats.disk_hits,
            stats.disk_entries
        );
    }
    if metrics_dump {
        eprint!("{}", engine_metrics_text(&engine));
    }
    Ok(())
}

/// `cdat whatif <file> [edits] [query]`: solve one patched variant of a
/// tree through the incremental what-if engine — only the nodes on dirty
/// root paths are recomputed; clean subtrees reuse memoized fronts. The
/// response line is byte-identical to solving the patched tree from
/// scratch; a recompute summary goes to stderr.
fn whatif(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(|| format!("missing file argument\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cdp = std::sync::Arc::new(cdat_format::parse(&text).map_err(|e| format!("{path}: {e}"))?);

    let (mut queries, rest) = parse_query_flags(&args[1..])?;
    let mut costs: Vec<(String, json::Value)> = Vec::new();
    let mut probs: Vec<(String, json::Value)> = Vec::new();
    let mut damages: Vec<(String, json::Value)> = Vec::new();
    let mut gates: Vec<(String, json::Value)> = Vec::new();
    let mut defends: Vec<json::Value> = Vec::new();
    let mut witnesses = false;
    let mut it = rest.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--set" => {
                let spec = it.next().ok_or("--set needs cost|prob|damage:NAME=VALUE")?;
                let (class, assign) = spec.split_once(':').ok_or_else(|| {
                    format!("--set {spec:?}: expected cost:NAME=VALUE, prob:NAME=VALUE or damage:NAME=VALUE")
                })?;
                let (name, value) = assign
                    .rsplit_once('=')
                    .ok_or_else(|| format!("--set {spec:?}: expected {class}:NAME=VALUE"))?;
                let value: f64 =
                    value.parse().map_err(|_| format!("--set {spec:?}: value must be a number"))?;
                let slot = match class {
                    "cost" => &mut costs,
                    "prob" => &mut probs,
                    "damage" => &mut damages,
                    other => {
                        return Err(format!(
                            "--set: unknown attribute class {other:?} (cost, prob or damage)"
                        ))
                    }
                };
                slot.push((name.to_owned(), json::Value::Num(value)));
            }
            "--gate" => {
                let spec = it.next().ok_or("--gate needs NAME=and|or")?;
                let (name, kind) = spec
                    .rsplit_once('=')
                    .ok_or_else(|| format!("--gate {spec:?}: expected NAME=and or NAME=or"))?;
                gates.push((name.to_owned(), json::Value::Str(kind.to_owned())));
            }
            "--defend" => {
                let name = it.next().ok_or("--defend needs a BAS name")?;
                defends.push(json::Value::Str(name.clone()));
            }
            "--witnesses" => witnesses = true,
            other => return Err(format!("unknown whatif flag {other:?}\n{}", usage())),
        }
    }

    // Assemble the edits as the wire-format patch object and parse it with
    // the server's own parser, so the CLI resolves names and rejects bad
    // patches with exactly the serving semantics.
    let mut fields: Vec<(String, json::Value)> = Vec::new();
    for (key, entries) in [("cost", costs), ("prob", probs), ("damage", damages), ("gate", gates)] {
        if !entries.is_empty() {
            fields.push((key.to_owned(), json::Value::Obj(entries)));
        }
    }
    if !defends.is_empty() {
        fields.push(("defend".to_owned(), json::Value::Arr(defends)));
    }
    if fields.is_empty() {
        return Err("whatif needs at least one edit (--set, --gate or --defend)".into());
    }
    let patch = protocol::parse_patch(&json::Value::Obj(fields), &cdp)?;

    if queries.len() > 1 {
        return Err("whatif takes at most one query flag".into());
    }
    let query = queries.pop().unwrap_or(solve::Query::Cdpf);
    let engine = solve::Engine::new(1);
    let request = solve::DeltaRequest::new(cdp, query, patch).with_witnesses(witnesses);
    let result = engine.whatif(&request);
    if let solve::Response::Error(message) = &result.response {
        return Err(message.clone());
    }
    println!(
        "{{{}{}}}",
        protocol::query_fragment(query),
        protocol::body_fragment(&result.response)
    );
    eprintln!(
        "whatif: {} dirty nodes recomputed, {} memoized subtree fronts reused",
        result.dirty_nodes, result.subtree_hits
    );
    Ok(())
}

/// Opens the `--trace PATH` JSONL flight recorder, when requested.
fn open_trace(path: Option<&String>) -> Result<Option<cdat::obs::TraceWriter>, String> {
    match path {
        Some(path) => cdat::obs::TraceWriter::open(std::path::Path::new(path))
            .map(Some)
            .map_err(|e| format!("cannot open trace file {path}: {e}")),
        None => Ok(None),
    }
}

/// Renders one engine's telemetry as Prometheus text — the same metric
/// names the server's `metrics` op exposes.
fn engine_metrics_text(engine: &solve::Engine) -> String {
    let mut out = String::new();
    if let Some(metrics) = engine.metrics() {
        let mut snap = solve::EngineSnapshot::new();
        snap.absorb(metrics);
        snap.render_prometheus(&mut out);
    }
    if let Some(store) = engine.store_metrics() {
        let mut snap = solve::StoreSnapshot::new();
        snap.absorb(&store);
        snap.render_prometheus(&mut out);
    }
    out
}

/// Renders one batch result as a single JSON object (no trailing newline).
/// The query and body fragments are shared with the serving protocol, so
/// batch and serve emit the same bytes for the same document.
fn render_result(
    doc: usize,
    name: Option<&str>,
    request: &solve::BatchRequest,
    result: &solve::BatchResult,
    timings: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{{\"doc\":{doc}");
    if let Some(name) = name {
        let _ = write!(s, ",\"name\":\"{}\"", json::escape(name));
    }
    let _ = write!(s, ",{}", protocol::query_fragment(request.query));
    let _ = write!(s, ",\"cache\":\"{}\"", if result.cache_hit { "hit" } else { "miss" });
    s.push_str(&protocol::body_fragment(&result.response));
    if timings {
        // `micros` is this run's solver time (zero on a cache hit);
        // `compute_us` is the answering front's original solve cost, so
        // hits report what the answer cost when it was first computed.
        let _ = write!(
            s,
            ",\"micros\":{},\"compute_us\":{}",
            result.compute.as_micros(),
            result.solve_cost.as_micros()
        );
    }
    s.push('}');
    s
}

/// `cdat serve [flags]`: run the long-running micro-batching query server
/// over stdio (default) or TCP.
fn serve(args: &[String]) -> Result<(), String> {
    let mut rest: Vec<&String> = args.iter().collect();
    let addr = take_value(&mut rest, "--addr")?.cloned();
    let shards = match take_value(&mut rest, "--workers")? {
        Some(text) => {
            let n = parse_count("--workers", text)?;
            if n == 0 {
                return Err("--workers: count must be a positive integer".into());
            }
            n
        }
        None => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    };
    let mut config = ServeConfig { shards, ..Default::default() };
    if let Some(text) = take_value(&mut rest, "--batch-max")? {
        config.batch_max = parse_count("--batch-max", text)?.max(1);
    }
    if let Some(text) = take_value(&mut rest, "--batch-window-us")? {
        config.batch_window = Duration::from_micros(parse_count("--batch-window-us", text)? as u64);
    }
    if let Some(text) = take_value(&mut rest, "--cache-budget")? {
        config.cache_budget = Some(parse_count("--cache-budget", text)?);
    }
    if let Some(text) = take_value(&mut rest, "--store")? {
        config.store = Some(std::path::PathBuf::from(text));
    }
    config.trace = open_trace(take_value(&mut rest, "--trace")?)?;
    let mut stdio = addr.is_none();
    for flag in rest {
        match flag.as_str() {
            "--stdio" => stdio = true,
            other => return Err(format!("unknown serve flag {other:?}\n{}", usage())),
        }
    }
    if stdio && addr.is_some() {
        return Err("--stdio and --addr are mutually exclusive".into());
    }
    match addr {
        Some(addr) => cdat::serve::serve_tcp(&addr, &config)
            .map_err(|e| format!("cannot serve on {addr}: {e}")),
        None => cdat::serve::serve_stdio(&config).map_err(|e| format!("cannot serve: {e}")),
    }
}

/// `cdat query --connect <addr> <suite> [query flags]`: send the suite to
/// a running `cdat serve`, one request per query, and print the response
/// lines in request order (then by document). With `--store <path>`
/// instead of `--connect`, answers locally through a store-backed router —
/// the same code path a server on that store would use, so the lines are
/// byte-identical to the served ones.
fn query(args: &[String]) -> Result<(), String> {
    let (mut queries, mut rest) = parse_query_flags(args)?;
    let addr = take_value(&mut rest, "--connect")?.cloned();
    let store = take_value(&mut rest, "--store")?.cloned();
    let solver = take_value(&mut rest, "--solver")?.cloned();
    let sweep = match take_value(&mut rest, "--sweep")? {
        Some(patches_path) => {
            let patches_text = std::fs::read_to_string(patches_path)
                .map_err(|e| format!("cannot read {patches_path}: {e}"))?;
            let patches: Vec<String> = patches_text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect();
            if patches.is_empty() {
                return Err(format!("{patches_path}: no patches (one JSON object per line)"));
            }
            Some(patches)
        }
        None => None,
    };
    if sweep.is_some() && solver.is_some() {
        return Err("--solver does not apply to --sweep (delta requests reuse the base \
                    tree's solver choice)"
            .into());
    }
    let mut take_switch = |flag: &str| match rest.iter().position(|f| f.as_str() == flag) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let witnesses = take_switch("--witnesses");
    let metrics_dump = take_switch("--metrics");
    let [path] = rest.as_slice() else {
        return Err(format!("query needs exactly one suite file argument\n{}", usage()));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if queries.is_empty() {
        queries.push(solve::Query::Cdpf);
    }
    let hint = match &solver {
        // Validate the spelling client-side for a friendly error.
        Some(solver) => solve::SolverHint::parse(solver)?,
        None => solve::SolverHint::Auto,
    };

    let mut lines = match (addr, store, &sweep) {
        (Some(_), Some(_), _) => {
            return Err("--connect and --store are mutually exclusive".into());
        }
        (None, None, None) => {
            return Err(format!("query needs --connect HOST:PORT or --store PATH\n{}", usage()));
        }
        (Some(addr), None, Some(patches)) => {
            query_sweep_remote(&addr, &text, &queries, witnesses, patches, metrics_dump)?
        }
        (Some(addr), None, None) => {
            query_remote(&addr, &text, &queries, solver.as_deref(), witnesses, metrics_dump)?
        }
        (None, store, Some(patches)) => query_sweep_local(
            path,
            store.as_deref(),
            &text,
            &queries,
            witnesses,
            patches,
            metrics_dump,
        )?,
        (None, Some(store), None) => {
            query_local(path, &store, &text, &queries, hint, witnesses, metrics_dump)?
        }
    };
    // Request order, then document order within a request (responses may
    // arrive interleaved across shards); sweep responses order by variant.
    // This client always sends numeric ids; anything unparseable sorts
    // last.
    let sort_key = |line: &str| {
        let value = json::parse(line).ok();
        let field = |name: &str| -> u64 {
            value
                .as_ref()
                .and_then(|v| v.get(name))
                .and_then(json::Value::as_f64)
                .map_or(u64::MAX, |v| v as u64)
        };
        (field("id"), field("doc"), field("variant"))
    };
    lines.sort_by_key(|line| sort_key(line));
    let mut out = String::new();
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    print!("{out}");
    Ok(())
}

/// The remote client: sends one suite request per query to a running
/// `cdat serve` and collects the raw response lines.
fn query_remote(
    addr: &str,
    text: &str,
    queries: &[solve::Query],
    solver: Option<&str>,
    witnesses: bool,
    metrics_dump: bool,
) -> Result<Vec<String>, String> {
    let mut request_lines = String::new();
    for (i, &query) in queries.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = write!(request_lines, "{{\"id\":{i},\"suite\":\"{}\"", json::escape(text));
        let _ = write!(request_lines, ",{}", protocol::query_fragment(query));
        if let Some(solver) = solver {
            let _ = write!(request_lines, ",\"solver\":\"{}\"", json::escape(solver));
        }
        if witnesses {
            request_lines.push_str(",\"witnesses\":true");
        }
        request_lines.push_str("}\n");
    }
    exchange(addr, request_lines, metrics_dump)
}

/// The remote sweep client: sends one `sweep` op per query (the whole
/// patch list inline) and collects the per-variant response lines.
fn query_sweep_remote(
    addr: &str,
    text: &str,
    queries: &[solve::Query],
    witnesses: bool,
    patches: &[String],
    metrics_dump: bool,
) -> Result<Vec<String>, String> {
    // Validate each patch line is well-formed JSON client-side for a
    // friendly error naming the line (the server only sees the batch).
    for (k, line) in patches.iter().enumerate() {
        json::parse(line).map_err(|e| format!("patch line {}: {e}", k + 1))?;
    }
    let mut request_lines = String::new();
    for (i, &query) in queries.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = write!(
            request_lines,
            "{{\"op\":\"sweep\",\"id\":{i},\"tree\":\"{}\"",
            json::escape(text)
        );
        let _ = write!(request_lines, ",{}", protocol::query_fragment(query));
        if witnesses {
            request_lines.push_str(",\"witnesses\":true");
        }
        let _ = write!(request_lines, ",\"patches\":[{}]", patches.join(","));
        request_lines.push_str("}\n");
    }
    exchange(addr, request_lines, metrics_dump)
}

/// Sends pre-rendered request lines to a running `cdat serve`, half-closes,
/// and collects the response lines (extracting a `metrics` answer to
/// stderr when one was requested).
fn exchange(
    addr: &str,
    mut request_lines: String,
    metrics_dump: bool,
) -> Result<Vec<String>, String> {
    use std::io::{BufRead, BufReader, Write as _};

    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    if metrics_dump {
        // Asked last so the scrape reflects the answers above.
        request_lines.push_str("{\"op\":\"metrics\",\"id\":\"metrics\"}\n");
    }
    writer.write_all(request_lines.as_bytes()).map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    // Half-close: the server answers everything in flight, then closes.
    stream.shutdown(std::net::Shutdown::Write).map_err(|e| format!("shutdown: {e}"))?;

    let mut lines: Vec<String> = Vec::new();
    for line in BufReader::new(stream).lines() {
        lines.push(line.map_err(|e| format!("receive: {e}"))?);
    }
    if metrics_dump {
        // The metrics answer can land anywhere in the stream: pull it out
        // of the response lines and print the exposition on stderr.
        let payload = |line: &String| {
            json::parse(line).ok().and_then(|v| match v.get("metrics") {
                Some(json::Value::Str(text)) => Some(text.clone()),
                _ => None,
            })
        };
        if let Some(i) = lines.iter().position(|l| payload(l).is_some()) {
            let line = lines.remove(i);
            eprint!("{}", payload(&line).expect("matched above"));
        }
    }
    Ok(lines)
}

/// The local store mode: answers the suite through a store-backed router,
/// no server needed. Prefixes and bodies come from the same protocol
/// rendering a server uses, so the lines match served bytes exactly.
fn query_local(
    path: &str,
    store: &str,
    text: &str,
    queries: &[solve::Query],
    hint: solve::SolverHint,
    witnesses: bool,
    metrics_dump: bool,
) -> Result<Vec<String>, String> {
    use cdat::serve::{RouteRequest, Router, RouterConfig};

    let documents = cdat_format::parse_multi(text).map_err(|e| format!("{path}: {e}"))?;
    let trees: Vec<std::sync::Arc<CdpAttackTree>> =
        documents.iter().map(|d| std::sync::Arc::new(d.tree.clone())).collect();
    let config = RouterConfig {
        shards: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        store: Some(std::path::PathBuf::from(store)),
        ..RouterConfig::default()
    };
    let router = Router::new(config).map_err(|e| format!("cannot open store {store}: {e}"))?;
    let mut requests = Vec::with_capacity(documents.len() * queries.len());
    for (i, &query) in queries.iter().enumerate() {
        for (doc, d) in documents.iter().enumerate() {
            requests.push(RouteRequest {
                tree: trees[doc].clone(),
                query,
                hint,
                witnesses,
                prefix: protocol::response_prefix(
                    &json::Value::Num(i as f64),
                    Some((doc, d.name.as_deref())),
                    query,
                ),
            });
        }
    }
    let lines = router.solve(requests);
    if metrics_dump {
        eprint!("{}", protocol::metrics_text(&router.snapshot()));
    }
    Ok(lines)
}

/// The local sweep mode: answers the patch list through a local router
/// (store-backed when `--store` was given, memory-only otherwise), one
/// response line per variant — the same lines a server would stream for
/// the `sweep` op.
fn query_sweep_local(
    path: &str,
    store: Option<&str>,
    text: &str,
    queries: &[solve::Query],
    witnesses: bool,
    patches: &[String],
    metrics_dump: bool,
) -> Result<Vec<String>, String> {
    use cdat::serve::{DeltaRouteRequest, Router, RouterConfig};

    let documents = cdat_format::parse_multi(text).map_err(|e| format!("{path}: {e}"))?;
    let [document] = documents.as_slice() else {
        return Err(format!(
            "--sweep needs a single-tree file, {path} has {} documents",
            documents.len()
        ));
    };
    let tree = std::sync::Arc::new(document.tree.clone());
    let parsed: Vec<solve::TreePatch> = patches
        .iter()
        .enumerate()
        .map(|(k, line)| {
            json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|value| protocol::parse_patch(&value, &tree))
                .map_err(|e| format!("patch line {}: {e}", k + 1))
        })
        .collect::<Result<_, _>>()?;
    let config = RouterConfig {
        shards: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        store: store.map(std::path::PathBuf::from),
        ..RouterConfig::default()
    };
    let router = Router::new(config)
        .map_err(|e| format!("cannot open store {}: {e}", store.unwrap_or_default()))?;
    let mut lines = Vec::new();
    for (i, &query) in queries.iter().enumerate() {
        lines.extend(
            router.sweep(DeltaRouteRequest {
                tree: tree.clone(),
                query,
                witnesses,
                patches: parsed.clone(),
                prefixes: (0..parsed.len())
                    .map(|k| {
                        protocol::delta_response_prefix(&json::Value::Num(i as f64), Some(k), query)
                    })
                    .collect(),
            }),
        );
    }
    if metrics_dump {
        eprint!("{}", protocol::metrics_text(&router.snapshot()));
    }
    Ok(lines)
}

fn info(cdp: &CdpAttackTree) {
    let t = cdp.tree();
    println!("root:      {}", t.name(t.root()));
    println!("nodes:     {}", t.node_count());
    println!("BASs:      {}", t.bas_count());
    println!("shape:     {}", if t.is_treelike() { "treelike" } else { "DAG-like" });
    println!("max damage: {}", cdp.cd().max_damage());
    println!("total cost: {}", cdp.cd().total_cost());
    let probabilistic = cdp.probs().iter().any(|&p| p != 1.0);
    println!("probabilistic attributes: {}", if probabilistic { "yes" } else { "no" });
    println!("solver for CDPF: {:?}", solve::backend_for(cdp.cd()));
}

fn attack_names(cdp: &CdpAttackTree, attack: &cdat::Attack) -> Vec<String> {
    attack.iter().map(|b| cdp.tree().name(cdp.tree().node_of_bas(b)).to_owned()).collect()
}

fn print_front(cdp: &CdpAttackTree, front: &ParetoFront) {
    println!("{} Pareto-optimal points:", front.len());
    println!("{:>10} {:>12} {:>4}  attack", "cost", "damage", "top");
    for e in front.entries() {
        match &e.witness {
            Some(w) => println!(
                "{:>10} {:>12} {:>4}  {}",
                e.point.cost,
                trim(e.point.damage),
                if cdp.tree().reaches_root(w) { "y" } else { "n" },
                attack_names(cdp, w).join(", ")
            ),
            None => println!("{:>10} {:>12}    ?", e.point.cost, trim(e.point.damage)),
        }
    }
}

fn print_entry(cdp: &CdpAttackTree, e: &FrontEntry, label: &str) {
    println!("{label}: cost {} damage {}", e.point.cost, trim(e.point.damage));
    if let Some(w) = &e.witness {
        println!("attack: {}", attack_names(cdp, w).join(", "));
        println!("reaches top: {}", if cdp.tree().reaches_root(w) { "yes" } else { "no" });
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v:.6}");
    s.trim_end_matches('0').trim_end_matches('.').to_owned()
}
