//! Serving front-end: a long-running, micro-batching query server.
//!
//! Re-exports [`cdat_server`]. The server accepts newline-delimited JSON
//! requests (a tree or suite inline, one of the six queries, an optional
//! solver hint, an optional witness opt-in) over stdio or TCP,
//! accumulates them into micro-batches, routes every request to the
//! worker shard owning its slice of the front cache (partitioned by the
//! canonical structural hash), bounds cache memory with LRU eviction, and
//! streams JSON-lines responses correlated by request id. Witnessed
//! responses carry attacks in the requesting document's own BAS numbering
//! (cached fronts are canonically translated; see [`cdat_engine`]).
//!
//! From the command line: `cdat serve` / `cdat query --connect`. From the
//! library:
//!
//! ```
//! use std::sync::Arc;
//! use cdat::serve::{Router, RouterConfig, RouteRequest};
//! use cdat::solve::{Query, SolverHint};
//!
//! let config = RouterConfig { shards: 2, ..RouterConfig::default() };
//! let router = Router::new(config).unwrap(); // only a store can fail to open
//! let request = RouteRequest {
//!     tree: Arc::new(cdat_models::factory_cdp()),
//!     query: Query::Cdpf,
//!     hint: SolverHint::Auto,
//!     witnesses: true,
//!     prefix: "{\"id\":0".into(),
//! };
//! let lines = router.solve(vec![request]);
//! assert_eq!(
//!     lines[0],
//!     "{\"id\":0,\"front\":[[0,0],[1,200],[3,210],[5,310]],\
//!      \"witnesses\":[[],[0],[0,2],[1,2]]}"
//! );
//! ```

pub use cdat_server::{
    protocol, serve_stdio, serve_tcp, DeltaRouteRequest, DispatchMetrics, Reply, RouteRequest,
    Router, RouterConfig, ServeConfig, ServerSnapshot, ShardTelemetry,
};
