//! # cdat — cost-damage analysis of attack trees
//!
//! A Rust implementation of *"Cost-damage analysis of attack trees"*
//! (Lopuhaä-Zwakenberg & Stoelinga, DSN 2023). An attacker wants to do as
//! much damage as possible under a cost budget; every node of the attack
//! tree carries a damage value, every basic attack step (BAS) a cost, and —
//! crucially — attacks that never reach the root still count. The library
//! answers the paper's three questions exactly:
//!
//! * **CDPF** — the full cost-damage Pareto front ([`solve::cdpf`]),
//! * **DgC** — the most damaging attack within a budget ([`solve::dgc`]),
//! * **CgD** — the cheapest attack reaching a damage threshold
//!   ([`solve::cgd`]),
//!
//! plus the probabilistic variants where BASs succeed with a probability
//! ([`solve::cedpf`], [`solve::edgc`], [`solve::cged`]), and two scalar
//! attribute-domain queries over the same generic bottom-up kernel
//! ([`cdat_pareto::AttributeDomain`]): minimal time-to-attack
//! ([`solve::min_time`]) and maximal single-attack success probability
//! ([`solve::max_prob`]).
//!
//! # Quick start
//!
//! ```
//! use cdat::{AttackTreeBuilder, CdAttackTree};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example: shut down a factory.
//! let mut b = AttackTreeBuilder::new();
//! let ca = b.bas("cyberattack");
//! let pb = b.bas("place bomb");
//! let fd = b.bas("force door");
//! let dr = b.and("destroy robot", [pb, fd]);
//! let _ps = b.or("production shutdown", [ca, dr]);
//!
//! let cd = CdAttackTree::builder(b.build()?)
//!     .cost("cyberattack", 1.0)?
//!     .cost("place bomb", 3.0)?
//!     .cost("force door", 2.0)?
//!     .damage("force door", 10.0)?
//!     .damage("destroy robot", 100.0)?
//!     .damage("production shutdown", 200.0)?
//!     .finish()?;
//!
//! // The Pareto front tells the whole cost-damage story:
//! let front = cdat::solve::cdpf(&cd);
//! assert_eq!(front.to_string(), "{(0, 0), (1, 200), (3, 210), (5, 310)}");
//!
//! // With a budget of 2, the worst the attacker can do is 200:
//! let best = cdat::solve::dgc(&cd, 2.0).expect("budget is nonnegative");
//! assert_eq!(best.point.damage, 200.0);
//! # Ok(()) }
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | attack-tree model, attacks, structure function, cd/cdp attribution, theory constructions |
//! | [`pareto`] | fronts, extended attribute triples, generic attribute domains, `min_U` pruning |
//! | [`bottomup`] | treelike solver over any attribute domain, deterministic + probabilistic + scalar |
//! | [`bilp`] | Theorem 6/7 encodings for DAG-like trees |
//! | [`engine`] | parallel batch solving, structural dedup, memoizing front cache with LRU eviction |
//! | [`server`] | micro-batching query server: JSON-lines protocol (see `docs/PROTOCOL.md`), shard-by-hash routing |
//! | [`store`] | append-only persistent front store (warm restarts; layout in `docs/ARCHITECTURE.md`) |
//! | [`ilp`] | simplex, branch-and-bound, bi-objective ε-constraint |
//! | [`enumerative`] | brute-force baselines, exact DAG-probabilistic extension |
//! | [`bdd`] | hash-consed BDDs for structure functions |
//! | [`models`] | case studies (panda IoT, data server) and Table IV blocks |
//! | [`obs`] | counters, log2 latency histograms, Prometheus text exposition, JSONL trace recorder |
//! | [`gen`] | random AT suites |
//! | [`analysis`] | defense what-ifs, defense ranking, minimal attacks |
//! | [`format`](mod@format) | human-writable text format (used by the `cdat` CLI) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cdat_analysis as analysis;
pub use cdat_bdd as bdd;
pub use cdat_bilp as bilp;
pub use cdat_bottomup as bottomup;
pub use cdat_core as core;
pub use cdat_engine as engine;
pub use cdat_enumerative as enumerative;
pub use cdat_format as format;
pub use cdat_gen as gen;
pub use cdat_ilp as ilp;
pub use cdat_models as models;
pub use cdat_obs as obs;
pub use cdat_pareto as pareto;
pub use cdat_server as server;
pub use cdat_store as store;

pub use cdat_core::{
    binarize, Attack, AttackTree, AttackTreeBuilder, BasId, CdAttackTree, CdpAttackTree, NodeId,
    NodeType,
};
pub use cdat_pareto::{CostDamage, FrontEntry, ParetoFront};

pub mod serve;
pub mod solve;
